// Package store is the durable tier of the synthesis result cache: a
// crash-safe, content-addressed on-disk plan store. Keys are canonical
// job keys (spec.CanonicalKey plus the engine name), values are
// planio-encoded plans, so every member of a presentation-equivalence
// class maps to one stored plan and a restarted daemon serves previously
// solved specs without re-running the optimizer (warm boot).
//
// Layout of a store directory:
//
//	wal.log          append-only write-ahead log of put/delete records
//	seg-%08d.log     at most one immutable, compacted segment
//	seg-%08d.tmp     transient compaction output, removed at open
//
// Durability is batched: Put appends to the WAL immediately (readable at
// once) and a background flusher fsyncs the file at most once per
// FlushInterval (group commit), so a burst of puts costs one fsync.
// Records written but not yet fsynced may be lost in a crash; everything
// before the last successful fsync is guaranteed to survive.
//
// Recovery tolerates a torn tail: the open-time scan applies records
// until the first structurally invalid or CRC-mismatching one, truncates
// the WAL there, and keeps everything before it. Reopen is idempotent —
// a second open of a recovered directory recovers the same contents and
// truncates nothing. Get re-verifies the record CRC on every read, so a
// corrupted record is never returned: it is evicted and reported as a
// miss, and the caller re-solves.
//
// Once the WAL exceeds MaxWALBytes a background compaction snapshots the
// live entries into a fresh segment (written to a temp file, fsynced,
// atomically renamed) and resets the WAL. A crash at any point of the
// compaction leaves a recoverable directory: stray temp files are
// ignored, and the WAL is only reset after the new segment is durable.
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"switchsynth/internal/faultinject"
	"switchsynth/internal/planio"
)

// Options tunes a store.
type Options struct {
	// FlushInterval is the group-commit window: the longest time an
	// acknowledged put may sit in the OS cache before it is fsynced.
	// Zero means the 5ms default; negative fsyncs every put (synchronous
	// durability, one fsync per write).
	FlushInterval time.Duration
	// MaxWALBytes triggers compaction once the WAL grows past it. Zero
	// means the 8 MiB default; negative disables compaction.
	MaxWALBytes int64
	// FaultInjector, when non-nil, enables the disk fault points (see
	// internal/faultinject). Nil makes every probe a nop.
	FaultInjector *faultinject.Injector
}

func (o Options) flushInterval() time.Duration {
	if o.FlushInterval != 0 {
		return o.FlushInterval
	}
	return 5 * time.Millisecond
}

func (o Options) maxWALBytes() int64 {
	if o.MaxWALBytes != 0 {
		return o.MaxWALBytes
	}
	return 8 << 20
}

// Stats is a point-in-time copy of the store's gauges and counters.
// Counters reset at Open (they describe this process's store lifetime,
// except Recovered/TruncatedBytes which describe the open itself).
type Stats struct {
	// Entries is the number of live keys; DiskBytes the WAL + segment
	// footprint.
	Entries   int   `json:"entries"`
	DiskBytes int64 `json:"diskBytes"`
	// Hits/Misses count Get outcomes; a CRC-failed read is a miss and a
	// CorruptEvicted.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Puts/Deletes count accepted writes.
	Puts    int64 `json:"puts"`
	Deletes int64 `json:"deletes"`
	// Flushes counts group-commit fsync batches; FsyncErrors failed ones
	// (the durable offset does not advance on failure).
	Flushes     int64 `json:"flushes"`
	FsyncErrors int64 `json:"fsyncErrors"`
	// Compactions counts completed compactions; CompactionsAborted ones
	// abandoned by a fault or error before the atomic rename.
	Compactions        int64 `json:"compactions"`
	CompactionsAborted int64 `json:"compactionsAborted"`
	// Recovered is the number of records applied by the open-time scan;
	// TruncatedBytes how much torn tail the open cut off the WAL.
	Recovered      int64 `json:"recovered"`
	TruncatedBytes int64 `json:"truncatedBytes"`
	// CorruptEvicted counts records dropped because their CRC failed on
	// read (Get, compaction, or the segment scan at open).
	CorruptEvicted int64 `json:"corruptEvicted"`
	// TornRepaired counts short-write tails truncated by a later append.
	TornRepaired int64 `json:"tornRepaired"`
}

// loc addresses one live record inside the WAL or the segment.
type loc struct {
	inSeg bool
	off   int64
	size  int
}

// Store is the durable plan store. All methods are safe for concurrent
// use. Create with Open, retire with Close.
type Store struct {
	dir  string
	opts Options
	inj  *faultinject.Injector

	mu         sync.Mutex
	wal        *os.File
	walSize    int64 // logical append offset (excludes any torn bytes)
	walDurable int64 // fsynced prefix of the WAL
	walDirty   bool  // bytes written since the last fsync
	torn       bool  // a short write left garbage at walSize
	seg        *os.File
	segID      int64
	segSize    int64
	index      map[string]loc
	compacting bool
	closed     bool
	stats      Stats

	flushStop chan struct{}
	flushDone chan struct{}
}

// walName is the WAL file name inside a store directory.
const walName = "wal.log"

// segName formats the immutable segment file name for id.
func segName(id int64) string { return fmt.Sprintf("seg-%08d.log", id) }

// Open creates (or recovers) the store in dir. The directory is created
// if missing. Recovery applies the newest segment, then the WAL up to
// the first bad record (truncating the torn tail), removing stray temp
// files and superseded segments.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		inj:   opts.FaultInjector,
		index: make(map[string]loc),
		segID: -1,
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if opts.flushInterval() > 0 {
		s.flushStop = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flusher(opts.flushInterval())
	}
	return s, nil
}

// recover scans the directory into a fresh index: stray .tmp files and
// superseded segments are deleted, the newest segment is replayed, then
// the WAL is replayed and truncated at its first bad record.
func (s *Store) recover() error {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var segs []int64
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			_ = os.Remove(filepath.Join(s.dir, name))
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".log"):
			var id int64
			if _, err := fmt.Sscanf(name, "seg-%08d.log", &id); err == nil {
				segs = append(segs, id)
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	// A crash between segment rename and old-segment removal can leave
	// two segments; the newest wins (it contains a superset of the live
	// entries at its compaction) and older ones are deleted.
	for _, id := range segs[:max(0, len(segs)-1)] {
		_ = os.Remove(filepath.Join(s.dir, segName(id)))
	}
	if len(segs) > 0 {
		s.segID = segs[len(segs)-1]
		seg, err := os.OpenFile(filepath.Join(s.dir, segName(s.segID)), os.O_RDONLY, 0)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.seg = seg
		s.segSize, err = s.replay(seg, true)
		if err != nil {
			return err
		}
	}
	wal, err := os.OpenFile(filepath.Join(s.dir, walName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.wal = wal
	good, err := s.replay(wal, false)
	if err != nil {
		return err
	}
	fi, err := wal.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if torn := fi.Size() - good; torn > 0 {
		if err := wal.Truncate(good); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
		if err := wal.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.stats.TruncatedBytes = torn
	}
	s.walSize = good
	s.walDurable = good
	return nil
}

// replay applies f's records to the index and returns the offset just
// past the last good record. In a segment (inSeg) a bad record means
// disk rot in an immutable file: the remainder is ignored and counted as
// CorruptEvicted. In the WAL it is the torn tail; the caller truncates.
func (s *Store) replay(f *os.File, inSeg bool) (int64, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	var off int64
	for int(off) < len(data) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			if inSeg {
				s.stats.CorruptEvicted++
			}
			return off, nil
		}
		switch rec.typ {
		case recPut:
			s.index[rec.key] = loc{inSeg: inSeg, off: off, size: n}
		case recDelete:
			delete(s.index, rec.key)
		}
		s.stats.Recovered++
		off += int64(n)
	}
	return off, nil
}

// Get returns the stored plan bytes and engine name for key. The record
// is CRC-verified on every read: a record that no longer checks out is
// evicted and reported as a miss, so a corrupted plan is never returned.
func (s *Store) Get(key string) (value []byte, engine string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, "", false
	}
	l, found := s.index[key]
	if !found {
		s.stats.Misses++
		return nil, "", false
	}
	rec, err := s.readRecord(l)
	if err != nil || rec.typ != recPut || rec.key != key {
		delete(s.index, key)
		s.stats.CorruptEvicted++
		s.stats.Misses++
		return nil, "", false
	}
	s.stats.Hits++
	return rec.value, rec.engine, true
}

// readRecord fetches and validates the record at l.
func (s *Store) readRecord(l loc) (record, error) {
	f := s.wal
	if l.inSeg {
		f = s.seg
	}
	buf := make([]byte, l.size)
	if _, err := f.ReadAt(buf, l.off); err != nil {
		return record{}, err
	}
	rec, _, err := decodeRecord(buf)
	return rec, err
}

// Put durably stores value (a planio-encoded plan) under key. The entry
// is readable immediately; durability follows at the next group commit.
func (s *Store) Put(key, engine string, value []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen || len(engine) > maxEngLen || len(value) > maxValLen {
		return fmt.Errorf("store: put %q: field size out of range", key)
	}
	rec := record{typ: recPut, key: key, engine: engine, value: value}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	off, err := s.appendLocked(&rec)
	if err != nil {
		return err
	}
	s.index[key] = loc{off: off, size: rec.size()}
	s.stats.Puts++
	s.maybeCompactLocked()
	if s.opts.flushInterval() < 0 {
		return s.syncLocked()
	}
	return nil
}

// Delete removes key, appending a tombstone so the removal survives
// restart. Deleting an absent key is a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if _, ok := s.index[key]; !ok {
		return nil
	}
	rec := record{typ: recDelete, key: key}
	if _, err := s.appendLocked(&rec); err != nil {
		return err
	}
	delete(s.index, key)
	s.stats.Deletes++
	if s.opts.flushInterval() < 0 {
		return s.syncLocked()
	}
	return nil
}

// appendLocked writes rec at the WAL tail and returns its offset. A torn
// tail left by an earlier short write is truncated away first, so the
// log stays contiguous. The disk fault points fire here: a short write
// tears the tail and fails the append; corruption flips a payload byte
// on the way to disk (the append succeeds, the CRC catches it on read).
func (s *Store) appendLocked(rec *record) (int64, error) {
	if s.torn {
		if err := s.wal.Truncate(s.walSize); err != nil {
			return 0, fmt.Errorf("store: repairing torn tail: %w", err)
		}
		s.torn = false
		s.stats.TornRepaired++
	}
	buf := rec.encode(make([]byte, 0, rec.size()))
	if s.inj.Fire(faultinject.DiskCorrupt) && len(rec.value) > 0 {
		// Flip a payload byte; the header and CRC stay as computed, so
		// the record decodes as structurally sound but fails its CRC.
		buf[recHeaderLen+len(rec.key)+len(rec.engine)] ^= 0xFF
	}
	off := s.walSize
	if s.inj.Fire(faultinject.DiskShortWrite) {
		if _, err := s.wal.WriteAt(buf[:len(buf)/2], off); err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		s.torn = true
		s.walDirty = true
		return 0, fmt.Errorf("store: short write appending %.16s… (torn tail)", rec.key)
	}
	if _, err := s.wal.WriteAt(buf, off); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	s.walSize += int64(len(buf))
	s.walDirty = true
	return off, nil
}

// Sync forces the pending WAL bytes to disk, advancing the durable
// offset: every put acknowledged before Sync returns survives a crash.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if !s.walDirty {
		return nil
	}
	if s.inj.Fire(faultinject.DiskFsyncErr) {
		s.stats.FsyncErrors++
		return fmt.Errorf("store: fsync failed (injected)")
	}
	if err := s.wal.Sync(); err != nil {
		s.stats.FsyncErrors++
		return fmt.Errorf("store: %w", err)
	}
	s.walDurable = s.walSize
	s.walDirty = false
	s.stats.Flushes++
	return nil
}

// flusher is the group-commit loop: at most one fsync per interval, and
// only when there is something to flush.
func (s *Store) flusher(interval time.Duration) {
	defer close(s.flushDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				_ = s.syncLocked()
			}
			s.mu.Unlock()
		case <-s.flushStop:
			return
		}
	}
}

// maybeCompactLocked starts a background compaction when the WAL has
// outgrown its threshold and none is running.
func (s *Store) maybeCompactLocked() {
	if max := s.opts.maxWALBytes(); max < 0 || s.walSize <= max || s.compacting {
		return
	}
	s.compacting = true
	go s.compact()
}

// compact snapshots the live entries into a new immutable segment and
// resets the WAL. The segment is written to a temp file, fsynced, and
// atomically renamed before the WAL is touched, so a crash at any point
// leaves either the old state or the new one, never a mix that loses a
// durable record. Entries whose record no longer CRC-verifies are
// dropped (and counted) rather than carried into the new segment.
func (s *Store) compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() { s.compacting = false }()
	if s.closed {
		return
	}
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	newID := s.segID + 1
	tmpPath := filepath.Join(s.dir, fmt.Sprintf("seg-%08d.tmp", newID))
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		s.stats.CompactionsAborted++
		return
	}
	abort := func() {
		tmp.Close()
		_ = os.Remove(tmpPath)
		s.stats.CompactionsAborted++
	}
	var (
		buf    []byte
		offset int64
		newIdx = make(map[string]loc, len(keys))
	)
	for _, k := range keys {
		rec, err := s.readRecord(s.index[k])
		if err != nil || rec.typ != recPut || rec.key != k {
			delete(s.index, k)
			s.stats.CorruptEvicted++
			continue
		}
		buf = rec.encode(buf[:0])
		if _, err := tmp.WriteAt(buf, offset); err != nil {
			abort()
			return
		}
		newIdx[k] = loc{inSeg: true, off: offset, size: len(buf)}
		offset += int64(len(buf))
	}
	if err := tmp.Sync(); err != nil {
		abort()
		return
	}
	if s.inj.Fire(faultinject.DiskCrashBeforeRename) {
		// Simulated crash: the fully written temp file stays behind (a
		// real crash could not remove it) and the store keeps running on
		// its current WAL + segment; reopen ignores the stray .tmp.
		tmp.Close()
		s.stats.CompactionsAborted++
		return
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, segName(newID))); err != nil {
		abort()
		return
	}
	syncDir(s.dir)
	// The new segment is durable: swap it in, then reset the WAL. A
	// crash between these steps replays WAL records that also live in
	// the segment — identical values, so recovery stays idempotent.
	oldSeg, oldID := s.seg, s.segID
	s.seg, s.segID, s.segSize = tmp, newID, offset
	s.index = newIdx
	if err := s.wal.Truncate(0); err == nil {
		_ = s.wal.Sync()
		s.walSize, s.walDurable, s.walDirty, s.torn = 0, 0, false, false
	}
	if oldSeg != nil {
		oldSeg.Close()
		_ = os.Remove(filepath.Join(s.dir, segName(oldID)))
	}
	s.stats.Compactions++
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Len reports the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Has reports whether key is live in the index, without touching disk or
// the hit/miss counters — the membership probe behind anti-entropy sync.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Keys returns the live keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Stats returns a snapshot of the store's gauges and counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	st.DiskBytes = s.walSize + s.segSize
	return st
}

// Export writes every live, CRC-verified plan into dir as a
// planio-compatible JSON file named <key-prefix>-<engine>.json, and
// returns how many were written. Binary-framed values are transcoded to
// the JSON file format (through full frame validation) so the export is
// always human-readable and feeds cmd/verifyplan for offline audit
// regardless of the wire format the daemon ran with; JSON values are
// written verbatim. A value whose frame fails to decode is treated like
// a CRC mismatch: evicted and counted, never exported.
func (s *Store) Export(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, k := range sortedKeys(s.index) {
		rec, err := s.readRecord(s.index[k])
		if err != nil || rec.typ != recPut || rec.key != k {
			delete(s.index, k)
			s.stats.CorruptEvicted++
			continue
		}
		data, err := planio.ToJSON(rec.value)
		if err != nil {
			delete(s.index, k)
			s.stats.CorruptEvicted++
			continue
		}
		name := exportName(rec.key, rec.engine)
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return n, fmt.Errorf("store: %w", err)
		}
		n++
	}
	return n, nil
}

// exportName builds a filesystem-safe file name from a job key. The key
// is "<64-hex-canonical>|<engine>"; the hex prefix is truncated for
// readability and the engine keeps the provenance visible.
func exportName(key, engine string) string {
	base := key
	if i := strings.IndexByte(base, '|'); i >= 0 {
		base = base[:i]
	}
	if len(base) > 16 {
		base = base[:16]
	}
	clean := func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}
	base = strings.Map(clean, base)
	if engine != "" {
		base += "-" + strings.Map(clean, engine)
	}
	return base + ".json"
}

func sortedKeys(m map[string]loc) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Close flushes pending writes, stops the group-commit flusher and
// closes the files. Safe to call once; the store is unusable after.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.syncLocked()
	s.closed = true
	s.mu.Unlock()
	if s.flushStop != nil {
		close(s.flushStop)
		<-s.flushDone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		s.wal.Close()
	}
	if s.seg != nil {
		s.seg.Close()
	}
	return err
}
