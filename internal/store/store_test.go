package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"switchsynth/internal/faultinject"
)

// openT opens a store in dir, failing the test on error and closing it
// at cleanup (Close is idempotent, so tests may also close explicitly).
func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// syncOpts makes every put durable immediately so tests never race the
// background flusher.
var syncOpts = Options{FlushInterval: -1}

func val(i int) []byte { return []byte(fmt.Sprintf(`{"plan":%d,"pad":"%032d"}`, i, i)) }

func TestPutGetDeleteRoundTrip(t *testing.T) {
	s := openT(t, t.TempDir(), syncOpts)
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("key-%d|search", i), "search", val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	got, eng, ok := s.Get("key-3|search")
	if !ok || eng != "search" || !bytes.Equal(got, val(3)) {
		t.Fatalf("Get = %q, %q, %v", got, eng, ok)
	}
	if _, _, ok := s.Get("absent"); ok {
		t.Fatal("absent key hit")
	}
	if err := s.Delete("key-3|search"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("key-3|search"); ok {
		t.Fatal("deleted key still served")
	}
	st := s.Stats()
	if st.Puts != 10 || st.Deletes != 1 || st.Hits != 1 || st.Misses != 2 || st.Entries != 9 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutOverwriteServesLatest(t *testing.T) {
	s := openT(t, t.TempDir(), syncOpts)
	for v := 0; v < 3; v++ {
		if err := s.Put("k|search", "search", val(v)); err != nil {
			t.Fatal(err)
		}
	}
	got, _, ok := s.Get("k|search")
	if !ok || !bytes.Equal(got, val(2)) {
		t.Fatalf("Get = %q, %v; want latest", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestWarmBootReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, syncOpts)
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), "search", val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("k2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, syncOpts)
	st := r.Stats()
	if st.Entries != 4 {
		t.Fatalf("reopened entries = %d, want 4", st.Entries)
	}
	if st.Recovered != 6 { // 5 puts + 1 tombstone
		t.Fatalf("recovered = %d, want 6", st.Recovered)
	}
	if st.TruncatedBytes != 0 {
		t.Fatalf("clean reopen truncated %d bytes", st.TruncatedBytes)
	}
	if _, _, ok := r.Get("k2"); ok {
		t.Fatal("tombstoned key survived reopen")
	}
	got, _, ok := r.Get("k4")
	if !ok || !bytes.Equal(got, val(4)) {
		t.Fatalf("k4 = %q, %v", got, ok)
	}
}

func TestTornTailTruncatedAndReopenIdempotent(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, syncOpts)
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), "search", val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage bytes at the WAL tail.
	wal := filepath.Join(dir, walName)
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{recPut, 0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(wal)

	r := openT(t, dir, syncOpts)
	st := r.Stats()
	if st.Entries != 3 || st.TruncatedBytes != 6 {
		t.Fatalf("stats after torn reopen = %+v", st)
	}
	after, _ := os.Stat(wal)
	if after.Size() != before.Size()-6 {
		t.Fatalf("wal size %d, want %d", after.Size(), before.Size()-6)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Second reopen: the repair is durable, nothing left to truncate.
	r2 := openT(t, dir, syncOpts)
	st2 := r2.Stats()
	if st2.Entries != 3 || st2.TruncatedBytes != 0 {
		t.Fatalf("second reopen = %+v", st2)
	}
}

func TestCompactionKeepsContentsAndShrinksWAL(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{FlushInterval: -1, MaxWALBytes: 2048})
	// Overwrite a small key set until the WAL crosses the threshold
	// several times; compaction must preserve exactly the latest values.
	for round := 0; round < 20; round++ {
		for i := 0; i < 4; i++ {
			if err := s.Put(fmt.Sprintf("k%d", i), "search", val(round*10+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, "compaction", func() bool { return s.Stats().Compactions >= 1 && !s.compactingNow() })
	st := s.Stats()
	if st.Entries != 4 {
		t.Fatalf("entries = %d, want 4", st.Entries)
	}
	for i := 0; i < 4; i++ {
		got, _, ok := s.Get(fmt.Sprintf("k%d", i))
		if !ok || !bytes.Equal(got, val(190+i)) {
			t.Fatalf("k%d = %q, %v; want %q", i, got, ok, val(190+i))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Exactly one live segment, no temp litter, and a reopen sees the
	// same four entries.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(segs) != 1 || len(tmps) != 0 {
		t.Fatalf("segments = %v, tmps = %v", segs, tmps)
	}
	r := openT(t, dir, syncOpts)
	if r.Len() != 4 {
		t.Fatalf("reopened entries = %d", r.Len())
	}
	got, _, ok := r.Get("k2")
	if !ok || !bytes.Equal(got, val(192)) {
		t.Fatalf("k2 after reopen = %q, %v", got, ok)
	}
}

// compactingNow reports whether a background compaction is running.
func (s *Store) compactingNow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compacting
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCorruptRecordEvictedOnGet(t *testing.T) {
	inj := faultinject.New(1).Set(faultinject.DiskCorrupt, faultinject.Rule{Probability: 1})
	s := openT(t, t.TempDir(), Options{FlushInterval: -1, FaultInjector: inj})
	if err := s.Put("k|search", "search", val(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("k|search"); ok {
		t.Fatal("corrupted record served")
	}
	st := s.Stats()
	if st.CorruptEvicted != 1 || st.Misses != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The fault injector keeps firing, but a clean write after the rule
	// is lifted serves normally.
	inj.Set(faultinject.DiskCorrupt, faultinject.Rule{})
	if err := s.Put("k|search", "search", val(2)); err != nil {
		t.Fatal(err)
	}
	if got, _, ok := s.Get("k|search"); !ok || !bytes.Equal(got, val(2)) {
		t.Fatalf("clean rewrite = %q, %v", got, ok)
	}
}

func TestShortWriteFailsPutAndNextAppendRepairs(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1).Set(faultinject.DiskShortWrite, faultinject.Rule{Probability: 1})
	s := openT(t, dir, Options{FlushInterval: -1, FaultInjector: inj})
	if err := s.Put("good-0", "search", val(0)); err == nil {
		t.Fatal("short write should fail the put")
	}
	if s.Len() != 0 {
		t.Fatal("torn put was indexed")
	}
	inj.Set(faultinject.DiskShortWrite, faultinject.Rule{})
	if err := s.Put("good-1", "search", val(1)); err != nil {
		t.Fatal(err)
	}
	if s.Stats().TornRepaired != 1 {
		t.Fatalf("stats = %+v, want 1 torn repair", s.Stats())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The repair truncated the torn bytes before appending, so the log
	// is contiguous: reopen recovers the good record with no truncation.
	r := openT(t, dir, syncOpts)
	st := r.Stats()
	if st.Entries != 1 || st.TruncatedBytes != 0 {
		t.Fatalf("reopen stats = %+v", st)
	}
	if got, _, ok := r.Get("good-1"); !ok || !bytes.Equal(got, val(1)) {
		t.Fatalf("good-1 = %q, %v", got, ok)
	}
}

func TestFsyncErrorDoesNotAdvanceDurableOffset(t *testing.T) {
	inj := faultinject.New(1).Set(faultinject.DiskFsyncErr, faultinject.Rule{Probability: 1})
	s := openT(t, t.TempDir(), Options{FlushInterval: -1, FaultInjector: inj})
	if err := s.Put("k", "search", val(1)); err == nil {
		t.Fatal("synchronous put should surface the fsync error")
	}
	if s.Stats().FsyncErrors != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	s.mu.Lock()
	durable := s.walDurable
	s.mu.Unlock()
	if durable != 0 {
		t.Fatalf("durable offset advanced to %d past a failed fsync", durable)
	}
	// The entry is still readable (it is in the OS cache, just not
	// durable) and a later successful sync makes it durable.
	if _, _, ok := s.Get("k"); !ok {
		t.Fatal("acked entry unreadable")
	}
	inj.Set(faultinject.DiskFsyncErr, faultinject.Rule{})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	durable, size := s.walDurable, s.walSize
	s.mu.Unlock()
	if durable != size {
		t.Fatalf("durable %d != size %d after successful sync", durable, size)
	}
}

func TestCrashBeforeRenameLeavesRecoverableDir(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1).Set(faultinject.DiskCrashBeforeRename, faultinject.Rule{Probability: 1})
	s := openT(t, dir, Options{FlushInterval: -1, MaxWALBytes: 512, FaultInjector: inj})
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), "search", val(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "aborted compaction", func() bool { return s.Stats().CompactionsAborted >= 1 })
	s.crash() // the simulated process death right after the fault
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) == 0 {
		t.Fatal("crash-before-rename left no temp file; fault not exercised")
	}
	r := openT(t, dir, syncOpts)
	if r.Len() != 8 {
		t.Fatalf("reopened entries = %d, want 8", r.Len())
	}
	tmps, _ = filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("open did not clean temp files: %v", tmps)
	}
	if r.Stats().Compactions != 0 {
		t.Fatalf("stats = %+v", r.Stats())
	}
}

func TestExportWritesPlanFiles(t *testing.T) {
	s := openT(t, t.TempDir(), syncOpts)
	if err := s.Put("aabbccddeeff00112233|search", "search", val(7)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("ffee|iqp", "iqp", val(8)); err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	n, err := s.Export(out)
	if err != nil || n != 2 {
		t.Fatalf("Export = %d, %v", n, err)
	}
	data, err := os.ReadFile(filepath.Join(out, "aabbccddeeff0011-search.json"))
	if err != nil || !bytes.Equal(data, val(7)) {
		t.Fatalf("exported file = %q, %v", data, err)
	}
	if _, err := os.Stat(filepath.Join(out, "ffee-iqp.json")); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommitFlusherMakesPutsDurable(t *testing.T) {
	s := openT(t, t.TempDir(), Options{FlushInterval: time.Millisecond})
	if err := s.Put("k", "search", val(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "group commit", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.walDurable == s.walSize && s.walSize > 0
	})
	if s.Stats().Flushes == 0 {
		t.Fatal("no flush recorded")
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	s := openT(t, t.TempDir(), syncOpts)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", "e", val(1)); err == nil {
		t.Fatal("put on closed store succeeded")
	}
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("get on closed store hit")
	}
	if err := s.Close(); err != nil {
		t.Fatal("second close should be a nop")
	}
}
