// On-disk record codec for the durable plan store.
//
// Both the WAL and the immutable segments are sequences of the same
// length-prefixed, CRC-trailed record:
//
//	byte    0      record type (recPut | recDelete)
//	bytes  1-4     key length   (uint32 LE)
//	bytes  5-8     engine length (uint32 LE)
//	bytes  9-12    value length (uint32 LE)
//	bytes 13-...   key ‖ engine ‖ value
//	last 4 bytes   CRC32C (Castagnoli) of everything before it
//
// The CRC covers the header too, so a flipped length byte is detected
// exactly like a flipped payload byte: the reader treats any record whose
// lengths are implausible or whose CRC mismatches as the start of a torn
// tail (WAL) or disk rot (segment) and stops.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record types.
const (
	recPut    = 1
	recDelete = 2
)

// Plausibility caps: a malformed header must not make the reader allocate
// gigabytes. Canonical keys are 64-hex + engine suffix; planio plans for
// the largest supported switches are well under a megabyte.
const (
	maxKeyLen = 4 << 10
	maxEngLen = 256
	maxValLen = 64 << 20
)

// recHeaderLen is the fixed prefix before the variable fields.
const recHeaderLen = 1 + 4 + 4 + 4

// recTrailerLen is the CRC32C suffix.
const recTrailerLen = 4

// castagnoli is the CRC32C table shared by writers and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// record is one decoded WAL/segment entry.
type record struct {
	typ    byte
	key    string
	engine string
	value  []byte
}

// size returns the encoded length of r.
func (r *record) size() int {
	return recHeaderLen + len(r.key) + len(r.engine) + len(r.value) + recTrailerLen
}

// encode appends r's wire form to buf and returns the extended slice.
func (r *record) encode(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, r.typ)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.engine)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.value)))
	buf = append(buf, r.key...)
	buf = append(buf, r.engine...)
	buf = append(buf, r.value...)
	crc := crc32.Checksum(buf[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// errBadRecord marks a record that failed structural or CRC validation;
// readers stop scanning (and WAL recovery truncates) at the first one.
var errBadRecord = fmt.Errorf("store: bad record")

// decodeRecord parses the record starting at data[0]. It returns the
// record and its encoded size, or errBadRecord when the bytes cannot be a
// complete, checksummed record (torn tail, corruption, or garbage).
func decodeRecord(data []byte) (record, int, error) {
	if len(data) < recHeaderLen+recTrailerLen {
		return record{}, 0, errBadRecord
	}
	typ := data[0]
	if typ != recPut && typ != recDelete {
		return record{}, 0, errBadRecord
	}
	keyLen := int(binary.LittleEndian.Uint32(data[1:5]))
	engLen := int(binary.LittleEndian.Uint32(data[5:9]))
	valLen := int(binary.LittleEndian.Uint32(data[9:13]))
	if keyLen <= 0 || keyLen > maxKeyLen || engLen < 0 || engLen > maxEngLen ||
		valLen < 0 || valLen > maxValLen {
		return record{}, 0, errBadRecord
	}
	n := recHeaderLen + keyLen + engLen + valLen + recTrailerLen
	if len(data) < n {
		return record{}, 0, errBadRecord
	}
	body := data[:n-recTrailerLen]
	want := binary.LittleEndian.Uint32(data[n-recTrailerLen : n])
	if crc32.Checksum(body, castagnoli) != want {
		return record{}, 0, errBadRecord
	}
	off := recHeaderLen
	rec := record{
		typ:    typ,
		key:    string(data[off : off+keyLen]),
		engine: string(data[off+keyLen : off+keyLen+engLen]),
		value:  append([]byte(nil), data[off+keyLen+engLen:off+keyLen+engLen+valLen]...),
	}
	return rec, n, nil
}
