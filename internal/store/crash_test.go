// Crash-recovery chaos suite: 25 seeded fault schedules drive the store
// through torn appends, corrupted records, failed fsyncs and compactions
// abandoned mid-flight, then simulate a process crash — the directory is
// reopened exactly as the last write left it, optionally mutilated
// beyond the durable offset the way a real crash mutilates an OS cache —
// and the recovery invariants are asserted:
//
//  1. Reopen never errors: the torn tail is truncated, stray temp files
//     are removed, and the store serves.
//  2. Every record fsynced before the crash is recovered (asserted in
//     schedules without injected record corruption; a corrupt record
//     poisons the log at its offset by design — recovery keeps the
//     prefix).
//  3. No corrupt plan is ever served: every Get after recovery returns
//     a byte-exact value that was previously acked for that key.
//  4. Reopen is idempotent: a second open of the recovered directory
//     sees identical contents and truncates nothing.
package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"switchsynth/internal/faultinject"
)

// crashSeeds is how many deterministic fault schedules the suite replays.
const crashSeeds = 25

// crash simulates process death: the flusher stops without a final sync,
// the descriptors close, and the directory is left exactly as the last
// write left it. Test-only; defined here so production code carries no
// crash hook.
func (s *Store) crash() {
	s.mu.Lock()
	s.closed = true
	wal, seg := s.wal, s.seg
	s.mu.Unlock()
	if s.flushStop != nil {
		close(s.flushStop)
		<-s.flushDone
	}
	if wal != nil {
		wal.Close()
	}
	if seg != nil {
		seg.Close()
	}
}

// durableOffset reports the fsynced WAL prefix (test-only).
func (s *Store) durableOffset() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walDurable
}

// valFor is the deterministic payload for (key, version): recovery tests
// re-derive it to prove a served value is byte-exact, never a blend of
// torn or corrupted records.
func valFor(key string, ver int) []byte {
	pad := strings.Repeat(fmt.Sprintf("<%s:%d>", key, ver), 1+ver%7)
	return []byte(fmt.Sprintf("%s#%d#%s", key, ver, pad))
}

// parseVal inverts valFor, returning the embedded version or an error.
func parseVal(key string, data []byte) (int, error) {
	parts := strings.SplitN(string(data), "#", 3)
	if len(parts) != 3 || parts[0] != key {
		return 0, fmt.Errorf("malformed value %.40q for key %q", data, key)
	}
	ver, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, err
	}
	if !bytes.Equal(data, valFor(key, ver)) {
		return 0, fmt.Errorf("value for %q claims version %d but bytes differ", key, ver)
	}
	return ver, nil
}

func TestChaosCrashRecovery(t *testing.T) {
	seeds := crashSeeds
	if testing.Short() {
		seeds = 5
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCrashSchedule(t, int64(seed))
		})
	}
}

func runCrashSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	// Every third schedule also injects record corruption; those assert
	// the never-serve-corrupt and idempotence invariants but not exact
	// durable recovery (a corrupt record legitimately truncates the log
	// at its own offset, taking later records with it).
	corruptSeed := seed%3 == 0
	inj := faultinject.New(seed).
		Set(faultinject.DiskShortWrite, faultinject.Rule{Probability: 0.12}).
		Set(faultinject.DiskFsyncErr, faultinject.Rule{Probability: 0.15}).
		Set(faultinject.DiskCrashBeforeRename, faultinject.Rule{Probability: 0.5})
	if corruptSeed {
		inj.Set(faultinject.DiskCorrupt, faultinject.Rule{Probability: 0.12})
	}
	dir := t.TempDir()
	// The flusher never ticks during the schedule, so durability moves
	// only at explicit Sync calls and the model below tracks it exactly.
	s, err := Open(dir, Options{
		FlushInterval: time.Hour,
		MaxWALBytes:   1500,
		FaultInjector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}

	keys := []string{"a|search", "b|search", "c|search", "d|iqp", "e|iqp", "f|search"}
	var (
		nextVer = map[string]int{}          // monotonic per-key version counter
		acked   = map[string]int{}          // latest acked version (0 = absent)
		syncVer = map[string]int{}          // acked state at the last successful Sync
		allowed = map[string]map[int]bool{} // versions recovery may legally surface
	)
	for _, k := range keys {
		allowed[k] = map[int]bool{0: true}
	}
	markSync := func() {
		for _, k := range keys {
			syncVer[k] = acked[k]
			allowed[k] = map[int]bool{acked[k]: true}
		}
	}

	ops := 40 + rng.Intn(40)
	for i := 0; i < ops; i++ {
		k := keys[rng.Intn(len(keys))]
		switch r := rng.Float64(); {
		case r < 0.70:
			nextVer[k]++
			v := nextVer[k]
			if err := s.Put(k, "search", valFor(k, v)); err == nil {
				acked[k] = v
				allowed[k][v] = true
			} else {
				nextVer[k]-- // unacked version numbers are never reused on disk
			}
		case r < 0.80:
			if err := s.Delete(k); err == nil {
				acked[k] = 0
				allowed[k][0] = true
			}
		case r < 0.92:
			if err := s.Sync(); err == nil {
				markSync()
			}
		default:
			if got, _, ok := s.Get(k); ok {
				if _, err := parseVal(k, got); err != nil {
					t.Fatalf("pre-crash Get served corrupt value: %v", err)
				}
			}
		}
	}
	// Wait out any in-flight background compaction, then die.
	waitFor(t, "compaction quiesce", func() bool { return !s.compactingNow() })
	durable := s.durableOffset()
	s.crash()

	// Mutilate the WAL beyond the durable offset: a crash may lose or
	// garble anything the OS had not yet fsynced, but never bytes below
	// the durable watermark.
	walPath := filepath.Join(dir, walName)
	if fi, err := os.Stat(walPath); err == nil && fi.Size() > durable {
		tail := fi.Size() - durable
		switch rng.Intn(3) {
		case 0: // everything written survived
		case 1: // a suffix of the unsynced tail vanishes
			if err := os.Truncate(walPath, durable+rng.Int63n(tail+1)); err != nil {
				t.Fatal(err)
			}
		case 2: // a byte of the unsynced tail flips
			f, err := os.OpenFile(walPath, os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt([]byte{byte(rng.Intn(256))}, durable+rng.Int63n(tail)); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
	}

	// Recovery runs clean (the injector died with the process).
	r, err := Open(dir, Options{FlushInterval: -1, MaxWALBytes: -1})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	recovered := map[string]int{}
	for _, k := range keys {
		got, _, ok := r.Get(k)
		if !ok {
			recovered[k] = 0
			continue
		}
		ver, err := parseVal(k, got)
		if err != nil {
			t.Fatalf("recovered Get served corrupt value: %v", err)
		}
		if ver > nextVer[k] {
			t.Fatalf("key %q recovered version %d, never acked past %d", k, ver, nextVer[k])
		}
		recovered[k] = ver
	}
	if !corruptSeed {
		for _, k := range keys {
			// allowed holds the version at the last successful Sync plus
			// every version acked after it (including 0 for post-sync
			// deletes): recovery must land on one of those — never on a
			// version the fsync had already superseded.
			if !allowed[k][recovered[k]] {
				t.Errorf("key %q recovered version %d; durable version %d, allowed %v",
					k, recovered[k], syncVer[k], versions(allowed[k]))
			}
		}
	}

	// Reopen idempotence: same contents, nothing further to repair.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, Options{FlushInterval: -1, MaxWALBytes: -1})
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer r2.Close()
	if tb := r2.Stats().TruncatedBytes; tb != 0 {
		t.Errorf("second reopen truncated %d bytes; recovery repair was not durable", tb)
	}
	for _, k := range keys {
		got, _, ok := r2.Get(k)
		ver := 0
		if ok {
			if ver, err = parseVal(k, got); err != nil {
				t.Fatalf("second reopen served corrupt value: %v", err)
			}
		}
		if ver != recovered[k] {
			t.Errorf("key %q: reopen not idempotent (%d then %d)", k, recovered[k], ver)
		}
	}
	// The recovered store still takes writes.
	if err := r2.Put("post-crash|search", "search", valFor("post-crash|search", 1)); err != nil {
		t.Fatal(err)
	}
	if got, _, ok := r2.Get("post-crash|search"); !ok || !bytes.Equal(got, valFor("post-crash|search", 1)) {
		t.Fatal("recovered store does not serve new writes")
	}
}

func versions(set map[int]bool) []int {
	var out []int
	for v := range set {
		out = append(out, v)
	}
	return out
}

// TestChaosConcurrentFaultedTraffic hammers one store from many
// goroutines while every disk fault fires, then crashes and recovers.
// The model is integrity-only (no per-key version accounting across
// goroutines); its value is the -race coverage of Put/Get/Delete/Sync
// racing the group-commit flusher and background compaction.
func TestChaosConcurrentFaultedTraffic(t *testing.T) {
	inj := faultinject.New(99).
		Set(faultinject.DiskShortWrite, faultinject.Rule{Probability: 0.05}).
		Set(faultinject.DiskCorrupt, faultinject.Rule{Probability: 0.05}).
		Set(faultinject.DiskFsyncErr, faultinject.Rule{Probability: 0.05}).
		Set(faultinject.DiskCrashBeforeRename, faultinject.Rule{Probability: 0.3})
	dir := t.TempDir()
	s, err := Open(dir, Options{
		FlushInterval: time.Millisecond,
		MaxWALBytes:   2048,
		FaultInjector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 60; i++ {
				k := fmt.Sprintf("k%d|search", rng.Intn(10))
				switch rng.Intn(4) {
				case 0, 1:
					_ = s.Put(k, "search", valFor(k, 1+rng.Intn(5)))
				case 2:
					if got, _, ok := s.Get(k); ok {
						if _, err := parseVal(k, got); err != nil {
							t.Errorf("corrupt value served: %v", err)
						}
					}
				case 3:
					_ = s.Delete(k)
				}
			}
		}()
	}
	wg.Wait()
	waitFor(t, "compaction quiesce", func() bool { return !s.compactingNow() })
	s.crash()
	r, err := Open(dir, Options{FlushInterval: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	for _, k := range r.Keys() {
		got, _, ok := r.Get(k)
		if !ok {
			continue
		}
		if _, err := parseVal(k, got); err != nil {
			t.Errorf("recovered corrupt value: %v", err)
		}
	}
}
