package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"switchsynth/internal/cases"
	"switchsynth/internal/report"
)

var fast = Config{TimeLimit: 8 * time.Second}

func TestRunTable41ShapeMatchesPaper(t *testing.T) {
	rows, plans := RunTable41(fast)
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 cases × 3 policies)", len(rows))
	}
	if err := VerifyPlans(plans); err != nil {
		t.Fatal(err)
	}
	// Paper shape: ChIP solvable everywhere; the other two only unfixed.
	for _, r := range rows {
		wantNoSolution := r.App != "chip-sw1" && r.Binding != "unfixed"
		if r.NoSolution != wantNoSolution {
			t.Errorf("%s/%s: NoSolution=%v, want %v", r.App, r.Binding, r.NoSolution, wantNoSolution)
		}
		if !r.NoSolution && !r.Timeout && r.L <= 0 {
			t.Errorf("%s/%s: empty solution row", r.App, r.Binding)
		}
	}
}

func TestRunTable42MatchesPaperShape(t *testing.T) {
	ex, syn, err := RunTable42(fast)
	if err != nil {
		t.Fatal(err)
	}
	if ex.NumSets != 3 {
		t.Errorf("sets = %d, want 3", ex.NumSets)
	}
	// The paper reports 15 valves and 21.2 mm on this example; the
	// reconstruction must land in the same regime.
	if ex.NumValves < 10 || ex.NumValves > 20 {
		t.Errorf("#valves = %d, want ≈15", ex.NumValves)
	}
	if ex.L < 15 || ex.L > 27 {
		t.Errorf("L = %.1f, want ≈21", ex.L)
	}
	if ex.ControlInlets <= 0 || ex.ControlInlets > ex.NumValves {
		t.Errorf("control inlets = %d with %d valves", ex.ControlInlets, ex.NumValves)
	}
	if len(ex.ScheduledFlows) != ex.NumSets {
		t.Errorf("scheduled flow lines = %d, want %d", len(ex.ScheduledFlows), ex.NumSets)
	}
	if syn == nil || syn.NumSets != 3 {
		t.Error("synthesis missing or inconsistent")
	}
}

func TestRunTable43ShapeMatchesPaper(t *testing.T) {
	rows, plans := RunTable43(fast)
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	if err := VerifyPlans(plans); err != nil {
		t.Fatal(err)
	}
	// Paper shape: per case, fixed runtime is the smallest and fixed length
	// the largest; clockwise length matches unfixed length.
	byApp := map[string]map[string]int{}
	for i, r := range rows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[string]int{}
		}
		byApp[r.App][r.Binding] = i
	}
	for app, pol := range byApp {
		fx, cw, uf := rows[pol["fixed"]], rows[pol["clockwise"]], rows[pol["unfixed"]]
		if fx.NoSolution || cw.NoSolution || uf.NoSolution {
			t.Errorf("%s: unexpected no-solution row", app)
			continue
		}
		if fx.L < cw.L-1e-9 || fx.L < uf.L-1e-9 {
			t.Errorf("%s: fixed L=%.1f should be the largest (cw %.1f, unfixed %.1f)", app, fx.L, cw.L, uf.L)
		}
		if fx.T > cw.T+0.5 {
			t.Errorf("%s: fixed T=%.3f should be below clockwise T=%.3f", app, fx.T, cw.T)
		}
	}
}

func TestRunCampaign(t *testing.T) {
	res := RunCampaign(Config{TimeLimit: 5 * time.Second}, 18, 42)
	if res.Stats.Total != 18 {
		t.Fatalf("total = %d", res.Stats.Total)
	}
	if res.Stats.Solved == 0 {
		t.Fatal("campaign solved nothing")
	}
	if !res.Stats.AllScheduled {
		t.Error("solved cases must schedule every flow")
	}
	if res.Stats.Solved+res.Stats.NoSolution+res.Stats.Timeout != res.Stats.Total {
		t.Error("row accounting inconsistent")
	}
	// The Section 4.2 finding: the unfixed policy always schedules its
	// cases; no-solutions only occur under fixed/clockwise binding.
	if res.Stats.NoSolutionByPolicy["unfixed"] != 0 {
		t.Errorf("unfixed produced %d no-solutions", res.Stats.NoSolutionByPolicy["unfixed"])
	}
}

func TestRunSpineBaselinePollution(t *testing.T) {
	for _, c := range []cases.Case{cases.NucleicAcid(), cases.MRNAIsolation()} {
		cmp, err := RunSpineBaseline(c)
		if err != nil {
			t.Fatal(err)
		}
		if cmp.Report.ConflictPairsPolluted == 0 {
			t.Errorf("%s: spine baseline should pollute conflicting pairs", cmp.Case)
		}
		if !strings.Contains(cmp.SVG, "</svg>") {
			t.Errorf("%s: baseline SVG malformed", cmp.Case)
		}
	}
}

func TestWriteFigures(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{TimeLimit: 8 * time.Second, OutDir: dir}
	_, plans := RunTable41(cfg)
	_, syn42, err := RunTable42(cfg)
	if err != nil {
		t.Fatal(err)
	}
	files, err := WriteFigures(cfg, plans, syn42)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 6 {
		t.Fatalf("only %d figure files written", len(files))
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "</svg>") {
			t.Errorf("%s: not an SVG", filepath.Base(f))
		}
	}
	// Figure 4.4 must be among them.
	found := false
	for _, f := range files {
		if strings.Contains(f, "fig4.4") {
			found = true
		}
	}
	if !found {
		t.Error("figure 4.4 missing")
	}
}

func TestWriteFiguresNoOutDir(t *testing.T) {
	files, err := WriteFigures(Config{}, nil, nil)
	if err != nil || files != nil {
		t.Errorf("empty OutDir should be a no-op, got %v, %v", files, err)
	}
}

func TestRunStressBounded(t *testing.T) {
	start := time.Now()
	row := RunStress(Config{TimeLimit: 3 * time.Second})
	if el := time.Since(start); el > time.Minute {
		t.Fatalf("stress run ignored the limit: %v", el)
	}
	// Within 3 s the engine may or may not prove optimality; either a plan
	// or a timeout is acceptable, a proven no-solution is not (the case is
	// feasible).
	if row.NoSolution {
		t.Error("stress case wrongly proven infeasible")
	}
}

func TestRunGRUComparison(t *testing.T) {
	cmp, err := RunGRUComparison(Config{TimeLimit: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.GridFeasible {
		t.Error("grid should route the TL/T conflict apart")
	}
	if cmp.GRUFeasible {
		t.Error("GRU should be unable to separate flows from TL and T (both pass node N)")
	}
	if cmp.GRUDRC == 0 {
		t.Error("GRU layout should violate the angular clearance rule")
	}
	if cmp.GridDRC != 0 {
		t.Errorf("grid layout has %d DRC violations", cmp.GridDRC)
	}
}

func TestRunScalingRuntimeGrowsWithModules(t *testing.T) {
	pts := RunScaling(Config{TimeLimit: 10 * time.Second}, []int{4, 6, 8, 10})
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	for _, p := range pts {
		if !p.Proven {
			t.Errorf("scaling point %d modules did not solve", p.Modules)
		}
	}
	// The Section 4.3 observation: larger inputs take longer. Require the
	// largest case to be slower than the smallest (monotonicity per point
	// would be flaky on CI noise).
	if pts[len(pts)-1].Seconds < pts[0].Seconds {
		t.Errorf("runtime did not grow: %v", pts)
	}
}

// TestRunCampaignDeterministicAcrossWorkers is the reproducibility
// contract behind results/campaign.txt: sequential and parallel runs
// must render byte-identical deterministic reports.
func TestRunCampaignDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{TimeLimit: 5 * time.Second}
	cfg.Workers = 1
	seq := RunCampaign(cfg, 12, 42)
	cfg.Workers = 4
	par := RunCampaign(cfg, 12, 42)

	seqText := seq.Stats.DeterministicString() + "\n" + report.CampaignTable(seq.Rows)
	parText := par.Stats.DeterministicString() + "\n" + report.CampaignTable(par.Rows)
	if seqText != parText {
		t.Errorf("worker count changed the deterministic report:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seqText, parText)
	}
	if par.Service == nil || par.Service.Workers != 4 {
		t.Error("parallel run did not expose engine metrics")
	}
	for i, r := range seq.Rows {
		if r.ID != i+1 {
			t.Fatalf("row %d has ID %d, want %d (IDs must be assigned and ordered)", i, r.ID, i+1)
		}
	}
}

func TestRunFPVACampaign(t *testing.T) {
	res := RunFPVACampaign(Config{TimeLimit: 5 * time.Second}, 9, 42)
	if res.Stats.Total != 9 {
		t.Fatalf("total = %d", res.Stats.Total)
	}
	if res.Stats.Solved == 0 {
		t.Fatal("FPVA campaign solved nothing")
	}
	if !res.Stats.AllScheduled {
		t.Error("solved cases must schedule every flow")
	}
	if res.Stats.Solved+res.Stats.NoSolution+res.Stats.Timeout != res.Stats.Total {
		t.Error("row accounting inconsistent")
	}
	// SwitchSize carries the derived port count for grid cases, so the
	// per-size means key on real dimensions rather than collapsing to 0.
	for _, r := range res.Rows {
		if r.SwitchSize < 8 {
			t.Fatalf("row %d: switch size %d; FPVA ports must be >= 8", r.ID, r.SwitchSize)
		}
	}
}

func TestRunFPVACampaignDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{TimeLimit: 5 * time.Second}
	cfg.Workers = 1
	seq := RunFPVACampaign(cfg, 6, 42)
	cfg.Workers = 4
	par := RunFPVACampaign(cfg, 6, 42)

	seqText := seq.Stats.DeterministicString() + "\n" + report.CampaignTable(seq.Rows)
	parText := par.Stats.DeterministicString() + "\n" + report.CampaignTable(par.Rows)
	if seqText != parText {
		t.Errorf("worker count changed the FPVA report:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seqText, parText)
	}
}

func TestRunFPVAScaling(t *testing.T) {
	points, err := RunFPVAScaling(Config{TimeLimit: 10 * time.Second}, [][2]int{{2, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	for _, p := range points {
		if !p.Proven {
			t.Errorf("%dx%d: canonical sweep spec did not solve", p.Rows, p.Cols)
		}
		if p.Patterns == 0 || p.Patterns > 2*(p.Rows+p.Cols)-2 {
			t.Errorf("%dx%d: %d patterns, want 1..%d", p.Rows, p.Cols, p.Patterns, 2*(p.Rows+p.Cols)-2)
		}
		if p.Faults != 2*p.Valves {
			t.Errorf("%dx%d: %d faults for %d valves", p.Rows, p.Cols, p.Faults, p.Valves)
		}
	}
	table := FPVAScalingTable(points)
	if !strings.Contains(table, "2x2") || !strings.Contains(table, "3x4") {
		t.Errorf("scaling table missing grid rows:\n%s", table)
	}
}
