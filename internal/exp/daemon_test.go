package exp

import (
	"net/http/httptest"
	"testing"
	"time"

	"switchsynth/internal/service"
)

// TestRunCampaignThroughDaemon runs a small campaign against a live
// service handler and checks that the remote rows match the in-process
// rows: same deterministic campaign table, byte for byte.
func TestRunCampaignThroughDaemon(t *testing.T) {
	eng := service.New(service.Config{Workers: 2})
	defer eng.Close()
	srv := httptest.NewServer(service.NewHandler(eng))
	defer srv.Close()

	cfg := Config{TimeLimit: 5 * time.Second, Workers: 2}
	local := RunCampaign(cfg, 9, 42)

	cfg.DaemonURL = srv.URL
	remote := RunCampaign(cfg, 9, 42)

	if remote.Stats.Total != 9 {
		t.Fatalf("total = %d, want 9", remote.Stats.Total)
	}
	if remote.Stats.Solved != local.Stats.Solved ||
		remote.Stats.NoSolution != local.Stats.NoSolution {
		t.Errorf("remote solved/nosol = %d/%d, local = %d/%d",
			remote.Stats.Solved, remote.Stats.NoSolution,
			local.Stats.Solved, local.Stats.NoSolution)
	}
	if !remote.Stats.AllScheduled {
		t.Error("remote campaign served plans with unscheduled flows")
	}
	if got, want := remote.Stats.DeterministicString(), local.Stats.DeterministicString(); got != want {
		t.Errorf("deterministic stats differ:\nremote: %s\nlocal:  %s", got, want)
	}
	if remote.Service == nil {
		t.Error("remote campaign did not fetch the daemon metrics snapshot")
	} else if remote.Service.JobsSubmitted == 0 {
		t.Error("daemon snapshot shows no submitted jobs")
	}
}

// TestRunCampaignDaemonUnreachable: a dead daemon must degrade to
// all-timeout rows, not panic or hang.
func TestRunCampaignDaemonUnreachable(t *testing.T) {
	srv := httptest.NewServer(nil)
	url := srv.URL
	srv.Close()

	res := RunCampaign(Config{TimeLimit: time.Second, Workers: 2, DaemonURL: url}, 3, 42)
	if res.Stats.Timeout != 3 {
		t.Errorf("timeouts = %d, want 3 (daemon unreachable)", res.Stats.Timeout)
	}
	if res.Stats.Solved != 0 {
		t.Errorf("solved = %d against a dead daemon", res.Stats.Solved)
	}
}
