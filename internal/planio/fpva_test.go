package planio

import (
	"bytes"
	"testing"

	"switchsynth/internal/contam"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

func fpvaPlan(t *testing.T) *spec.Result {
	t.Helper()
	sp := &spec.Spec{
		Name:     "fpva-roundtrip",
		Topology: spec.TopologyFPVA,
		GridRows: 3,
		GridCols: 3,
		Modules:  []string{"a", "b", "x", "y"},
		Flows:    []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts: [][2]int{
			{0, 1},
		},
		Binding: spec.Unfixed,
	}
	res, err := search.Solve(sp, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFPVARoundTripJSON: an FPVA plan survives the JSON file format
// with its topology, routes and derived fields intact.
func TestFPVARoundTripJSON(t *testing.T) {
	res := fpvaPlan(t)
	data, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := contam.Verify(back); err != nil {
		t.Fatalf("decoded plan invalid: %v", err)
	}
	if !back.Spec.IsFPVA() || back.Spec.GridRows != 3 || back.Spec.GridCols != 3 {
		t.Errorf("round trip lost the topology: %+v", back.Spec)
	}
	if back.Switch.Kind != "fpva" {
		t.Errorf("decoded plan rebuilt on a %q switch", back.Switch.Kind)
	}
	if back.NumSets != res.NumSets || back.UsedEdgeMask != res.UsedEdgeMask || back.Length != res.Length {
		t.Errorf("round trip changed the plan")
	}
}

// TestFPVARoundTripBinary: same through the binary frame, plus frame
// re-encode byte-stability and cross-format agreement.
func TestFPVARoundTripBinary(t *testing.T) {
	res := fpvaPlan(t)
	frame, err := EncodeBinary(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if err := contam.Verify(back); err != nil {
		t.Fatalf("decoded plan invalid: %v", err)
	}
	if !back.Spec.IsFPVA() || back.Spec.GridRows != 3 || back.Spec.GridCols != 3 {
		t.Errorf("binary round trip lost the topology: %+v", back.Spec)
	}
	if back.Spec.SwitchPins != 0 {
		t.Errorf("binary round trip invented switchPins = %d", back.Spec.SwitchPins)
	}
	frame2, err := EncodeBinary(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, frame2) {
		t.Error("binary re-encode of an FPVA plan is not byte-stable")
	}

	// Cross-format: transcoding to JSON and back lands on the same frame.
	wire, err := ToJSON(frame)
	if err != nil {
		t.Fatal(err)
	}
	fromWire, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	frame3, err := EncodeBinary(fromWire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, frame3) {
		t.Error("JSON transcode changed the FPVA binary frame")
	}
}

// TestCrossbarFrameBytesUnchangedByFPVASupport pins the compatibility
// guarantee: a crossbar plan's frame must not contain the FPVA flag or
// any extra bytes — the flags byte stays exactly bit0, so frames are
// byte-identical to what the pre-FPVA encoder produced.
func TestCrossbarFrameBytesUnchangedByFPVASupport(t *testing.T) {
	res := plan(t) // the crossbar plan helper from planio_test.go
	frame, err := EncodeBinary(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if back.Spec.Topology != "" || back.Spec.GridRows != 0 || back.Spec.GridCols != 0 {
		t.Errorf("crossbar frame decoded with topology fields: %+v", back.Spec)
	}
	// The explicit alias spelling encodes to the identical frame.
	alias := *res
	aliasSpec := *res.Spec
	aliasSpec.Topology = spec.TopologyCrossbar
	alias.Spec = &aliasSpec
	aliasFrame, err := EncodeBinary(&alias)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, aliasFrame) {
		t.Error("the crossbar alias changed the binary frame")
	}
}

// TestDecodeRejectsFPVAFrameCorruption: an FPVA frame with its grid
// dimensions tampered to an invalid size fails closed.
func TestDecodeRejectsFPVAFrameCorruption(t *testing.T) {
	res := fpvaPlan(t)
	frame, err := EncodeBinary(res)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte; the checksum must catch it.
	mut := append([]byte(nil), frame...)
	mut[len(mut)/2] ^= 0x40
	if _, err := DecodeBinary(mut); err == nil {
		t.Error("tampered FPVA frame accepted")
	}
}
