package planio

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestStreamFetchRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteFetchRequest(w, "job:abc"); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	key, err := ReadFetchRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if key != "job:abc" {
		t.Fatalf("key = %q, want job:abc", key)
	}

	for _, tc := range []struct {
		name  string
		data  []byte
		found bool
	}{
		{"found", []byte("plan-bytes"), true},
		{"missing", nil, false},
		{"nil data demotes to missing", nil, true},
		{"empty found", []byte{}, true},
	} {
		buf.Reset()
		w.Reset(&buf)
		if err := WriteFetchResponse(w, tc.data, tc.found); err != nil {
			t.Fatalf("%s: write: %v", tc.name, err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		data, found, err := ReadFetchResponse(bufio.NewReader(&buf), 1<<20)
		if err != nil {
			t.Fatalf("%s: read: %v", tc.name, err)
		}
		wantFound := tc.found && tc.data != nil
		if found != wantFound {
			t.Errorf("%s: found = %v, want %v", tc.name, found, wantFound)
		}
		if !bytes.Equal(data, tc.data) && wantFound {
			t.Errorf("%s: data = %q, want %q", tc.name, data, tc.data)
		}
	}
}

func TestStreamFetchBounds(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteFetchRequest(w, strings.Repeat("k", maxStreamKeyLen+1)); !errors.Is(err, ErrStreamKeyTooLong) {
		t.Fatalf("oversized key write err = %v, want ErrStreamKeyTooLong", err)
	}

	// An oversized length prefix is rejected before any payload read.
	buf.Reset()
	w.Reset(&buf)
	if err := WriteFetchResponse(w, make([]byte, 64), true); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFetchResponse(bufio.NewReader(&buf), 63); err == nil {
		t.Fatal("oversized plan passed the maxLen bound")
	}

	// A truncated payload is an unexpected EOF, not a silent short read.
	buf.Reset()
	w.Reset(&buf)
	if err := WriteFetchResponse(w, []byte("0123456789"), true); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, _, err := ReadFetchResponse(bufio.NewReader(bytes.NewReader(trunc)), 1<<20); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated response err = %v, want ErrUnexpectedEOF", err)
	}

	// An unknown status byte is rejected.
	if _, _, err := ReadFetchResponse(bufio.NewReader(bytes.NewReader([]byte{0x7f})), 1<<20); err == nil {
		t.Fatal("unknown status byte accepted")
	}

	// Clean EOF between requests surfaces as io.EOF for the server loop.
	if _, err := ReadFetchRequest(bufio.NewReader(bytes.NewReader(nil))); !errors.Is(err, io.EOF) {
		t.Fatalf("idle close err = %v, want io.EOF", err)
	}
}
