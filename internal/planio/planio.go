// Package planio serializes synthesized switch plans to JSON and back, so
// plans can be stored, exchanged between tools, and independently
// re-verified (cmd/verifyplan). The encoding stores the spec, the binding
// and each route's vertex sequence; masks, lengths and objectives are
// recomputed on load and never trusted from the file.
package planio

import (
	"encoding/json"
	"fmt"

	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
)

// fileFormat is the versioned on-disk structure.
type fileFormat struct {
	// Version guards future format changes.
	Version int `json:"version"`
	// Spec is the original synthesis input.
	Spec *spec.Spec `json:"spec"`
	// PinOf maps module names to clockwise pin orders.
	PinOf map[string]int `json:"pinOf"`
	// Routes stores one entry per flow in flow order.
	Routes []routeFormat `json:"routes"`
	// Engine and Proven describe how the plan was produced. Degraded,
	// LowerBound and Gap carry the anytime-solver metadata for plans
	// returned without an optimality proof.
	Engine     string  `json:"engine,omitempty"`
	Proven     bool    `json:"proven,omitempty"`
	Degraded   bool    `json:"degraded,omitempty"`
	LowerBound float64 `json:"lowerBound,omitempty"`
	Gap        float64 `json:"gap,omitempty"`
}

type routeFormat struct {
	Flow int `json:"flow"`
	Set  int `json:"set"`
	// Verts is the vertex-name sequence of the path, inlet pin first.
	Verts []string `json:"verts"`
}

// currentVersion of the file format.
const currentVersion = 1

// EncodeWire serializes a plan compactly (no indentation) for embedding
// in service responses. The bytes decode with Decode exactly like
// Encode's output: the wire format IS the file format.
func EncodeWire(res *spec.Result) (json.RawMessage, error) {
	ff, err := toFileFormat(res)
	if err != nil {
		return nil, err
	}
	return json.Marshal(ff)
}

// Encode serializes a plan with indentation for files.
func Encode(res *spec.Result) ([]byte, error) {
	ff, err := toFileFormat(res)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(ff, "", "  ")
}

func toFileFormat(res *spec.Result) (fileFormat, error) {
	ff := fileFormat{
		Version:    currentVersion,
		Spec:       res.Spec,
		PinOf:      res.PinOf,
		Engine:     res.Engine,
		Proven:     res.Proven,
		Degraded:   res.Degraded,
		LowerBound: res.LowerBound,
		Gap:        res.Gap,
	}
	for _, rt := range res.Routes {
		rf := routeFormat{Flow: rt.Flow, Set: rt.Set}
		for _, v := range rt.Path.Verts {
			if v < 0 || v >= len(res.Switch.Vertices) {
				return fileFormat{}, fmt.Errorf("planio: flow %d references vertex %d outside the %d-vertex switch", rt.Flow, v, len(res.Switch.Vertices))
			}
			rf.Verts = append(rf.Verts, res.Switch.Vertices[v].Name)
		}
		ff.Routes = append(ff.Routes, rf)
	}
	return ff, nil
}

// Decode parses a plan and reconstructs it on a freshly built switch model.
// All derived fields (edge masks, lengths, objective, set count) are
// recomputed; the caller should still contam.Verify the result.
func Decode(data []byte) (*spec.Result, error) {
	var ff fileFormat
	if err := json.Unmarshal(data, &ff); err != nil {
		return nil, fmt.Errorf("planio: %w", err)
	}
	if ff.Version != currentVersion {
		return nil, fmt.Errorf("planio: unsupported version %d", ff.Version)
	}
	if ff.Spec == nil {
		return nil, fmt.Errorf("planio: missing spec")
	}
	if err := ff.Spec.Validate(); err != nil {
		return nil, err
	}
	sw, err := topo.NewGrid(ff.Spec.SwitchPins)
	if err != nil {
		return nil, err
	}
	res := &spec.Result{
		Spec:       ff.Spec,
		Switch:     sw,
		PinOf:      ff.PinOf,
		Engine:     ff.Engine,
		Proven:     ff.Proven,
		Degraded:   ff.Degraded,
		LowerBound: ff.LowerBound,
		Gap:        ff.Gap,
	}
	if len(ff.Routes) != len(ff.Spec.Flows) {
		return nil, fmt.Errorf("planio: %d routes for %d flows", len(ff.Routes), len(ff.Spec.Flows))
	}
	sets := map[int]bool{}
	for i, rf := range ff.Routes {
		if rf.Flow != i {
			return nil, fmt.Errorf("planio: route %d is for flow %d", i, rf.Flow)
		}
		path, err := rebuildPath(sw, rf.Verts)
		if err != nil {
			return nil, fmt.Errorf("planio: flow %d: %w", i, err)
		}
		res.Routes = append(res.Routes, spec.Route{Flow: rf.Flow, Set: rf.Set, Path: path})
		res.UsedEdgeMask = res.UsedEdgeMask.Or(path.EdgeMask)
		sets[rf.Set] = true
	}
	res.NumSets = len(sets)
	for e := range sw.Edges {
		if res.UsedEdgeMask.Has(e) {
			res.Length += sw.Edges[e].Length
		}
	}
	res.Objective = ff.Spec.EffectiveAlpha()*float64(res.NumSets) + ff.Spec.EffectiveBeta()*res.Length
	return res, nil
}

// rebuildPath converts a vertex-name sequence back into a validated path.
func rebuildPath(sw *topo.Switch, names []string) (topo.Path, error) {
	if len(names) < 2 {
		return topo.Path{}, fmt.Errorf("path too short")
	}
	p := topo.Path{}
	for i, name := range names {
		v, ok := sw.VertexByName(name)
		if !ok {
			return topo.Path{}, fmt.Errorf("unknown vertex %q", name)
		}
		p.Verts = append(p.Verts, v.ID)
		p.VertMask.Set(v.ID)
		if i > 0 {
			e, ok := sw.EdgeBetween(p.Verts[i-1], v.ID)
			if !ok {
				return topo.Path{}, fmt.Errorf("no segment %s-%s", names[i-1], name)
			}
			p.EdgeIDs = append(p.EdgeIDs, e.ID)
			p.EdgeMask.Set(e.ID)
			p.Length += e.Length
		}
	}
	p.In = p.Verts[0]
	p.Out = p.Verts[len(p.Verts)-1]
	return p, nil
}
