// Package planio serializes synthesized switch plans so they can be
// stored, exchanged between tools and nodes, and independently
// re-verified (cmd/verifyplan). Two encodings share one validation path:
//
//   - JSON (Encode / EncodeWire / Decode): the human and audit format —
//     what cmd/switchsynth writes, what store exports produce, and what
//     verifyplan reads.
//   - Binary (EncodeBinary / DecodeBinary, binary.go): the machine
//     format — a length-prefixed, CRC32C-checksummed frame with a string
//     table and varint vertex encoding, used on the WAL, the cluster
//     wire and the service plan cache.
//
// DecodeAny sniffs the leading bytes and accepts either, so mixed-version
// peers interoperate regardless of transport headers. Both decoders
// store only the spec, the binding and each route's vertex sequence;
// masks, lengths and objectives are recomputed on load and never trusted
// from the bytes.
package planio

import (
	"encoding/json"
	"fmt"

	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
)

// fileFormat is the versioned on-disk structure.
type fileFormat struct {
	// Version guards future format changes.
	Version int `json:"version"`
	// Spec is the original synthesis input.
	Spec *spec.Spec `json:"spec"`
	// PinOf maps module names to clockwise pin orders.
	PinOf map[string]int `json:"pinOf"`
	// Routes stores one entry per flow in flow order.
	Routes []routeFormat `json:"routes"`
	// Engine and Proven describe how the plan was produced. Degraded,
	// LowerBound and Gap carry the anytime-solver metadata for plans
	// returned without an optimality proof.
	Engine     string  `json:"engine,omitempty"`
	Proven     bool    `json:"proven,omitempty"`
	Degraded   bool    `json:"degraded,omitempty"`
	LowerBound float64 `json:"lowerBound,omitempty"`
	Gap        float64 `json:"gap,omitempty"`
}

type routeFormat struct {
	Flow int `json:"flow"`
	Set  int `json:"set"`
	// Verts is the vertex-name sequence of the path, inlet pin first.
	Verts []string `json:"verts"`
}

// currentVersion of the file format.
const currentVersion = 1

// EncodeWire serializes a plan compactly (no indentation) for embedding
// in service responses. The bytes decode with Decode exactly like
// Encode's output: the wire format IS the file format.
func EncodeWire(res *spec.Result) (json.RawMessage, error) {
	ff, err := toFileFormat(res)
	if err != nil {
		return nil, err
	}
	return json.Marshal(ff)
}

// Encode serializes a plan with indentation for files.
func Encode(res *spec.Result) ([]byte, error) {
	ff, err := toFileFormat(res)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(ff, "", "  ")
}

func toFileFormat(res *spec.Result) (fileFormat, error) {
	ff := fileFormat{
		Version:    currentVersion,
		Spec:       res.Spec,
		PinOf:      res.PinOf,
		Engine:     res.Engine,
		Proven:     res.Proven,
		Degraded:   res.Degraded,
		LowerBound: res.LowerBound,
		Gap:        res.Gap,
	}
	ff.Routes = make([]routeFormat, 0, len(res.Routes))
	for _, rt := range res.Routes {
		rf := routeFormat{
			Flow:  rt.Flow,
			Set:   rt.Set,
			Verts: make([]string, 0, len(rt.Path.Verts)),
		}
		for _, v := range rt.Path.Verts {
			if v < 0 || v >= len(res.Switch.Vertices) {
				return fileFormat{}, fmt.Errorf("planio: flow %d references vertex %d outside the %d-vertex switch", rt.Flow, v, len(res.Switch.Vertices))
			}
			rf.Verts = append(rf.Verts, res.Switch.Vertices[v].Name)
		}
		ff.Routes = append(ff.Routes, rf)
	}
	return ff, nil
}

// Decode parses a JSON plan and reconstructs it on the shared switch
// model. All derived fields (edge masks, lengths, objective, set count)
// are recomputed; the caller should still contam.Verify the result.
func Decode(data []byte) (*spec.Result, error) {
	var ff fileFormat
	if err := json.Unmarshal(data, &ff); err != nil {
		return nil, fmt.Errorf("planio: %w", err)
	}
	if ff.Version != currentVersion {
		return nil, fmt.Errorf("planio: unsupported version %d", ff.Version)
	}
	// Fold the explicit "crossbar" alias to the canonical empty selector
	// before re-encoding can observe it: the binary format has no alias
	// representation, so a plan must canonicalize identically whichever
	// format carried it.
	if ff.Spec != nil && ff.Spec.Topology == spec.TopologyCrossbar {
		ff.Spec.Topology = ""
	}
	sw, err := prepare(ff.Spec, ff.PinOf, len(ff.Routes))
	if err != nil {
		return nil, err
	}
	res := &spec.Result{
		Spec:       ff.Spec,
		Switch:     sw,
		PinOf:      ff.PinOf,
		Engine:     ff.Engine,
		Proven:     ff.Proven,
		Degraded:   ff.Degraded,
		LowerBound: ff.LowerBound,
		Gap:        ff.Gap,
		Routes:     make([]spec.Route, 0, len(ff.Routes)),
	}
	for i, rf := range ff.Routes {
		if rf.Flow != i {
			return nil, fmt.Errorf("planio: route %d is for flow %d", i, rf.Flow)
		}
		path, err := rebuildPath(sw, rf.Verts)
		if err != nil {
			return nil, fmt.Errorf("planio: flow %d: %w", i, err)
		}
		res.Routes = append(res.Routes, spec.Route{Flow: rf.Flow, Set: rf.Set, Path: path})
	}
	if err := finalize(res); err != nil {
		return nil, err
	}
	return res, nil
}

// DecodeAny decodes a plan in either encoding, sniffing the leading
// bytes: a binary frame magic selects DecodeBinary, anything else is
// handed to the JSON decoder. Receivers use this regardless of transport
// content-type headers, so a mislabeled or mixed-version peer can never
// smuggle bytes past validation — both paths converge on the same
// checks.
func DecodeAny(data []byte) (*spec.Result, error) {
	if IsBinary(data) {
		return DecodeBinary(data)
	}
	return Decode(data)
}

// prepare runs the format-independent validation both decoders share:
// the spec must be present and valid, the binding must cover exactly the
// spec's modules with distinct in-range pins, and the route count must
// match the flow count. It returns the (process-shared) switch model the
// routes rebuild on.
func prepare(sp *spec.Spec, pinOf map[string]int, nRoutes int) (*topo.Switch, error) {
	if sp == nil {
		return nil, fmt.Errorf("planio: missing spec")
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if sp.Binding < spec.Fixed || sp.Binding > spec.Unfixed {
		return nil, fmt.Errorf("planio: unknown binding policy %d", sp.Binding)
	}
	if len(pinOf) != len(sp.Modules) {
		return nil, fmt.Errorf("planio: binding covers %d entries for %d modules", len(pinOf), len(sp.Modules))
	}
	pinUsed := make(map[int]string, len(pinOf))
	for _, m := range sp.Modules {
		p, ok := pinOf[m]
		if !ok {
			return nil, fmt.Errorf("planio: module %q has no pin binding", m)
		}
		if p < 0 || p >= sp.Ports() {
			return nil, fmt.Errorf("planio: module %q bound to pin %d outside [0,%d)", m, p, sp.Ports())
		}
		if other, dup := pinUsed[p]; dup {
			return nil, fmt.Errorf("planio: modules %q and %q share pin %d", other, m, p)
		}
		pinUsed[p] = m
	}
	sw, err := sp.SharedSwitch()
	if err != nil {
		return nil, err
	}
	if nRoutes != len(sp.Flows) {
		return nil, fmt.Errorf("planio: %d routes for %d flows", nRoutes, len(sp.Flows))
	}
	return sw, nil
}

// finalize recomputes every derived field from the rebuilt routes and
// cross-checks each path's endpoints against the binding: flow i must
// run from its source module's bound pin to its destination module's
// bound pin, so a tampered file cannot pair a consistent-looking binding
// with routes that ignore it.
func finalize(res *spec.Result) error {
	sw := res.Switch
	sets := map[int]bool{}
	for i := range res.Routes {
		rt := &res.Routes[i]
		if rt.Set < 0 || rt.Set >= len(res.Spec.Flows) {
			return fmt.Errorf("planio: flow %d scheduled in set %d outside [0,%d)", rt.Flow, rt.Set, len(res.Spec.Flows))
		}
		f := res.Spec.Flows[rt.Flow]
		if rt.Path.In != sw.PinVertex(res.PinOf[f.From]) || rt.Path.Out != sw.PinVertex(res.PinOf[f.To]) {
			return fmt.Errorf("planio: flow %d path endpoints do not match the %s→%s pin binding", rt.Flow, f.From, f.To)
		}
		res.UsedEdgeMask = res.UsedEdgeMask.Or(rt.Path.EdgeMask)
		sets[rt.Set] = true
	}
	res.NumSets = len(sets)
	for e := range sw.Edges {
		if res.UsedEdgeMask.Has(e) {
			res.Length += sw.Edges[e].Length
		}
	}
	res.Objective = res.Spec.EffectiveAlpha()*float64(res.NumSets) + res.Spec.EffectiveBeta()*res.Length
	return nil
}

// rebuildPath converts a vertex-name sequence back into a validated path.
func rebuildPath(sw *topo.Switch, names []string) (topo.Path, error) {
	if len(names) < 2 {
		return topo.Path{}, fmt.Errorf("path too short")
	}
	p := topo.Path{
		Verts:   make([]int, 0, len(names)),
		EdgeIDs: make([]int, 0, len(names)-1),
	}
	for i, name := range names {
		v, ok := sw.VertexByName(name)
		if !ok {
			return topo.Path{}, fmt.Errorf("unknown vertex %q", name)
		}
		p.Verts = append(p.Verts, v.ID)
		p.VertMask.Set(v.ID)
		if i > 0 {
			e, ok := sw.EdgeBetween(p.Verts[i-1], v.ID)
			if !ok {
				return topo.Path{}, fmt.Errorf("no segment %s-%s", names[i-1], name)
			}
			p.EdgeIDs = append(p.EdgeIDs, e.ID)
			p.EdgeMask.Set(e.ID)
			p.Length += e.Length
		}
	}
	p.In = p.Verts[0]
	p.Out = p.Verts[len(p.Verts)-1]
	return p, nil
}
