package planio

import (
	"bytes"
	"testing"

	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

// FuzzDecode throws arbitrary bytes at the wire decoder. Decode guards
// the trust boundary between the durable store / export files and the
// solver core, so the contract is strict: it must never panic, and any
// input it accepts must be internally consistent enough to re-encode.
func FuzzDecode(f *testing.F) {
	sp := &spec.Spec{
		Name:       "fuzz-seed",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Unfixed,
	}
	res, err := search.Solve(sp, search.Options{})
	if err != nil {
		f.Fatal(err)
	}
	good, err := Encode(res)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2]) // truncated mid-object
	f.Add(bytes.Replace(good, []byte(`"version": 1`), []byte(`"version": 99`), 1))
	f.Add(bytes.Replace(good, []byte(`"set"`), []byte(`"sot"`), -1)) // unknown field names
	f.Add(bytes.Replace(good, []byte(`p0`), []byte(`zz`), -1))       // vertex names off the grid
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"spec":null}`))
	f.Add([]byte(`{"version":1,"spec":{"switchPins":-8}}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted plans must survive re-encoding: Decode recomputes the
		// derived fields, so a plan it vouches for is serializable again.
		if _, err := Encode(out); err != nil {
			t.Fatalf("Decode accepted a plan Encode rejects: %v", err)
		}
	})
}
