package planio

import (
	"bytes"
	"testing"

	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

// FuzzDecode throws arbitrary bytes at the wire decoder. Decode guards
// the trust boundary between the durable store / export files and the
// solver core, so the contract is strict: it must never panic, and any
// input it accepts must be internally consistent enough to re-encode.
func FuzzDecode(f *testing.F) {
	sp := &spec.Spec{
		Name:       "fuzz-seed",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Unfixed,
	}
	res, err := search.Solve(sp, search.Options{})
	if err != nil {
		f.Fatal(err)
	}
	good, err := Encode(res)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2]) // truncated mid-object
	f.Add(bytes.Replace(good, []byte(`"version": 1`), []byte(`"version": 99`), 1))
	f.Add(bytes.Replace(good, []byte(`"set"`), []byte(`"sot"`), -1)) // unknown field names
	f.Add(bytes.Replace(good, []byte(`p0`), []byte(`zz`), -1))       // vertex names off the grid
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"spec":null}`))
	f.Add([]byte(`{"version":1,"spec":{"switchPins":-8}}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted plans must survive re-encoding: Decode recomputes the
		// derived fields, so a plan it vouches for is serializable again.
		if _, err := Encode(out); err != nil {
			t.Fatalf("Decode accepted a plan Encode rejects: %v", err)
		}
	})
}

// fuzzSeedFrame builds a known-good binary frame for the fuzz corpora.
func fuzzSeedFrame(f *testing.F) []byte {
	f.Helper()
	sp := &spec.Spec{
		Name:       "fuzz-seed",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Unfixed,
	}
	res, err := search.Solve(sp, search.Options{})
	if err != nil {
		f.Fatal(err)
	}
	res.Engine = "search"
	frame, err := EncodeBinary(res)
	if err != nil {
		f.Fatal(err)
	}
	return frame
}

// FuzzDecodeBinary throws arbitrary bytes at the binary frame decoder.
// Same trust boundary, same contract as FuzzDecode: never panic, never
// over-allocate on a hostile count, and anything accepted must be
// consistent enough to re-encode — in both formats.
func FuzzDecodeBinary(f *testing.F) {
	frame := fuzzSeedFrame(f)
	f.Add(frame)
	f.Add(frame[:len(frame)-4])   // missing checksum
	f.Add(frame[:headerLen])      // header only
	f.Add(frame[:len(frame)/2])   // truncated payload
	f.Add(append(frame, 0))       // trailing byte
	corrupt := bytes.Clone(frame) // payload flip
	corrupt[len(corrupt)/2] ^= 0x40
	f.Add(corrupt)
	badVer := bytes.Clone(frame)
	badVer[4] = 99
	f.Add(badVer)
	f.Add([]byte{0xF5, 'S', 'P', '1'})
	f.Add([]byte{0xF5, 'S', 'P', '1', 1, 0xFF, 0xFF, 0xFF, 0xFF}) // absurd length
	f.Add([]byte(``))
	f.Add([]byte(`{"version":1}`)) // JSON is not a frame

	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecodeBinary(data)
		if err != nil {
			return
		}
		re, err := EncodeBinary(out)
		if err != nil {
			t.Fatalf("DecodeBinary accepted a plan EncodeBinary rejects: %v", err)
		}
		// The re-encode is canonical: decoding it again must reproduce it
		// byte for byte (the original may use non-minimal varints).
		out2, err := DecodeBinary(re)
		if err != nil {
			t.Fatalf("canonical re-encode does not decode: %v", err)
		}
		re2, err := EncodeBinary(out2)
		if err != nil {
			t.Fatalf("re-encode of re-decode rejected: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("binary re-encoding is not a fixed point")
		}
	})
}

// FuzzCrossFormat checks the transcoding invariant both directions: any
// bytes either decoder accepts must convert to the other format, decode
// there, and re-encode byte-identically — so a mixed-version cluster can
// transcode plans at every hop without drift.
func FuzzCrossFormat(f *testing.F) {
	frame := fuzzSeedFrame(f)
	f.Add(frame)
	res, err := DecodeBinary(frame)
	if err != nil {
		f.Fatal(err)
	}
	wire, err := EncodeWire(res)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(wire))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeAny(data)
		if err != nil {
			return
		}
		// Accepted in one format ⇒ encodable in both.
		frame, err := EncodeBinary(res)
		if err != nil {
			t.Fatalf("accepted plan rejected by EncodeBinary: %v", err)
		}
		wire, err := EncodeWire(res)
		if err != nil {
			t.Fatalf("accepted plan rejected by EncodeWire: %v", err)
		}
		// Each encoding decodes and re-encodes to identical bytes.
		fromFrame, err := DecodeBinary(frame)
		if err != nil {
			t.Fatalf("emitted frame rejected: %v", err)
		}
		fromWire, err := Decode(wire)
		if err != nil {
			t.Fatalf("emitted JSON rejected: %v", err)
		}
		frame2, err := EncodeBinary(fromWire)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frame, frame2) {
			t.Fatal("json round trip changed the binary frame")
		}
		wire2, err := EncodeWire(fromFrame)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, wire2) {
			t.Fatal("binary round trip changed the JSON wire bytes")
		}
		// And the two decodes agree on the derived plan facts.
		if fromFrame.NumSets != fromWire.NumSets ||
			fromFrame.UsedEdgeMask != fromWire.UsedEdgeMask ||
			fromFrame.Length != fromWire.Length ||
			fromFrame.Objective != fromWire.Objective {
			t.Fatal("formats disagree on derived plan fields")
		}
	})
}
