package planio

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"switchsynth/internal/spec"
)

// VerifiedCache remembers the SHA-256 digests of plan bytes that have
// already passed a FULL import verification (decode → Proven → canonical
// key re-derivation → contamination check) together with the key they
// verified under and the decoded result. Because verification is a pure
// function of the bytes, identical bytes need never be re-verified:
// a digest hit is exactly as trustworthy as the original full check,
// and any byte difference — including every fault-injected corruption —
// changes the digest and falls through to the full path.
//
// Entries enter only through Add, which callers must invoke with bytes
// they have JUST fully verified (or that they themselves encoded from a
// locally proven plan, which is the same proof obligation). Lookup is
// keyed by (digest, expected key): bytes verified under a different
// canonical key miss, so a cache entry can never vouch for bytes under
// the wrong key.
type VerifiedCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent
	byDig map[[sha256.Size]byte]*list.Element

	hits   uint64
	misses uint64
	adds   uint64
}

type verifiedEntry struct {
	dig [sha256.Size]byte
	key string
	res *spec.Result
}

// DefaultVerifiedCapacity sizes the process-wide SharedVerified cache.
const DefaultVerifiedCapacity = 4096

// SharedVerified is the process-wide verified-bytes cache. Sharing
// across engines and tests is sound for the same reason the cache itself
// is: the verdict depends only on the bytes.
var SharedVerified = NewVerifiedCache(DefaultVerifiedCapacity)

// NewVerifiedCache returns a cache bounded to n entries (n <= 0 falls
// back to DefaultVerifiedCapacity).
func NewVerifiedCache(n int) *VerifiedCache {
	if n <= 0 {
		n = DefaultVerifiedCapacity
	}
	return &VerifiedCache{
		cap:   n,
		order: list.New(),
		byDig: make(map[[sha256.Size]byte]*list.Element, n),
	}
}

// Lookup reports whether data is byte-identical to bytes previously
// verified under key, returning the decoded result from that
// verification on a hit.
func (c *VerifiedCache) Lookup(data []byte, key string) (*spec.Result, bool) {
	dig := sha256.Sum256(data)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byDig[dig]
	if !ok || el.Value.(*verifiedEntry).key != key {
		c.misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*verifiedEntry).res, true
}

// Add records that data passed a full verification under key, decoding
// to res. Callers must only pass proven plans whose exact bytes they
// verified (or produced) themselves.
func (c *VerifiedCache) Add(data []byte, key string, res *spec.Result) {
	if res == nil || !res.Proven {
		return
	}
	dig := sha256.Sum256(data)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byDig[dig]; ok {
		el.Value.(*verifiedEntry).key = key
		el.Value.(*verifiedEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.adds++
	c.byDig[dig] = c.order.PushFront(&verifiedEntry{dig: dig, key: key, res: res})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		delete(c.byDig, last.Value.(*verifiedEntry).dig)
		c.order.Remove(last)
	}
}

// VerifiedStats is a point-in-time snapshot of a VerifiedCache.
type VerifiedStats struct {
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Adds     uint64 `json:"adds"`
}

// Stats returns the cache counters.
func (c *VerifiedCache) Stats() VerifiedStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return VerifiedStats{
		Entries:  c.order.Len(),
		Capacity: c.cap,
		Hits:     c.hits,
		Misses:   c.misses,
		Adds:     c.adds,
	}
}
