package planio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"unicode/utf8"

	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
)

// Binary frame layout (all integers little-endian, varints per
// encoding/binary):
//
//	offset  size  field
//	0       4     magic 0xF5 'S' 'P' '1'  (0xF5 can never begin JSON or UTF-8 text)
//	4       1     frame version (1)
//	5       4     payload length N (uint32)
//	9       N     payload
//	9+N     4     CRC32C (Castagnoli) over bytes [0, 9+N)
//
// The payload is, in order: a string table (uvarint count, then per
// string uvarint length + bytes, UTF-8 required), the spec block
// (name ref, switchPins, module refs, flows as module-index pairs,
// conflict pairs, binding, FixedPins as sorted (key ref, signed-varint
// pin) pairs, alpha/beta as float64 bits, maxSets, flags bit0=scalable
// bit1=fpva, and — only when bit1 is set — gridRows/gridCols uvarints),
// the pin binding (one pin uvarint per module, in module order), plan
// metadata (engine ref, flags bit0=proven bit1=degraded, lowerBound/gap
// float64 bits), and the routes (count, then per flow in flow order:
// set, vertex count, vertex-ID uvarints).
//
// Frames are rejected unless the length matches exactly (no trailing
// bytes), the checksum verifies, and the decoded plan passes the same
// prepare/finalize validation as the JSON path.

const (
	binaryVersion = 1
	// headerLen covers magic + version + payload length.
	headerLen = 9
	// frameOverhead is the fixed cost over the payload: header + CRC.
	frameOverhead = headerLen + 4
	// maxFrameElems bounds every count read from a frame before any
	// allocation, independent of the remaining-bytes check.
	maxFrameElems = 1 << 20
)

// ContentTypeBinary labels binary plan frames on the wire; ContentTypeJSON
// labels the JSON file format.
const (
	ContentTypeBinary = "application/x-switchsynth-plan"
	ContentTypeJSON   = "application/json"
)

var (
	frameMagic = [4]byte{0xF5, 'S', 'P', '1'}
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

const (
	specFlagScalable = 1 << 0
	// specFlagFPVA marks an FPVA-topology spec; when set, two extra
	// uvarints (gridRows, gridCols) follow the spec flags byte. Crossbar
	// frames never set it and carry no extra bytes, so every frame a
	// pre-FPVA encoder produced is byte-identical under the current
	// encoder and decodes on both sides — the frame version stays 1.
	specFlagFPVA = 1 << 1

	metaFlagProven   = 1 << 0
	metaFlagDegraded = 1 << 1
)

// IsBinary reports whether data starts with the binary frame magic.
func IsBinary(data []byte) bool {
	return len(data) >= 4 && data[0] == frameMagic[0] && data[1] == frameMagic[1] &&
		data[2] == frameMagic[2] && data[3] == frameMagic[3]
}

// ContentTypeOf returns the HTTP content type matching the encoding of
// data.
func ContentTypeOf(data []byte) string {
	if IsBinary(data) {
		return ContentTypeBinary
	}
	return ContentTypeJSON
}

// ToJSON returns plan bytes in the JSON file format: binary frames are
// transcoded through full decode validation, JSON passes through
// unchanged. The transcoded output is byte-identical to EncodeWire of
// the decoded plan, so mixed-version peers see exactly the bytes a
// JSON-only node would have produced.
func ToJSON(data []byte) ([]byte, error) {
	if !IsBinary(data) {
		return data, nil
	}
	res, err := DecodeBinary(data)
	if err != nil {
		return nil, err
	}
	return EncodeWire(res)
}

// stringTable deduplicates the strings of a frame during encoding.
type stringTable struct {
	refs map[string]uint64
	strs []string
}

func (t *stringTable) add(s string) {
	if _, ok := t.refs[s]; ok {
		return
	}
	t.refs[s] = uint64(len(t.strs))
	t.strs = append(t.strs, s)
}

func (t *stringTable) ref(s string) uint64 { return t.refs[s] }

// EncodeBinary serializes a plan as a checksummed binary frame. It runs
// the same structural validation as the decoders first, so any frame it
// emits is guaranteed to decode.
func EncodeBinary(res *spec.Result) ([]byte, error) {
	sp := res.Spec
	if _, err := prepare(sp, res.PinOf, len(res.Routes)); err != nil {
		return nil, err
	}
	if !finite(res.LowerBound) || !finite(res.Gap) {
		return nil, fmt.Errorf("planio: non-finite plan metadata (lowerBound=%v gap=%v)", res.LowerBound, res.Gap)
	}
	for i := range res.Routes {
		rt := &res.Routes[i]
		if rt.Flow != i {
			return nil, fmt.Errorf("planio: route %d is for flow %d", i, rt.Flow)
		}
		if rt.Set < 0 || rt.Set >= len(sp.Flows) {
			return nil, fmt.Errorf("planio: flow %d scheduled in set %d outside [0,%d)", i, rt.Set, len(sp.Flows))
		}
		if len(rt.Path.Verts) < 2 {
			return nil, fmt.Errorf("planio: flow %d path too short", i)
		}
		for _, v := range rt.Path.Verts {
			if v < 0 || v >= len(res.Switch.Vertices) {
				return nil, fmt.Errorf("planio: flow %d references vertex %d outside the %d-vertex switch", i, v, len(res.Switch.Vertices))
			}
		}
	}

	table := stringTable{refs: make(map[string]uint64, len(sp.Modules)+len(sp.FixedPins)+2)}
	table.add(sp.Name)
	table.add(res.Engine)
	for _, m := range sp.Modules {
		table.add(m)
	}
	fixedKeys := make([]string, 0, len(sp.FixedPins))
	for k := range sp.FixedPins {
		fixedKeys = append(fixedKeys, k)
	}
	sort.Strings(fixedKeys)
	for _, k := range fixedKeys {
		table.add(k)
	}

	buf := make([]byte, headerLen, 256+headerLen)
	copy(buf, frameMagic[:])
	buf[4] = binaryVersion

	// String table.
	buf = binary.AppendUvarint(buf, uint64(len(table.strs)))
	for _, s := range table.strs {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}

	// Spec block.
	buf = binary.AppendUvarint(buf, table.ref(sp.Name))
	buf = binary.AppendUvarint(buf, uint64(sp.SwitchPins))
	buf = binary.AppendUvarint(buf, uint64(len(sp.Modules)))
	for _, m := range sp.Modules {
		buf = binary.AppendUvarint(buf, table.ref(m))
	}
	buf = binary.AppendUvarint(buf, uint64(len(sp.Flows)))
	for _, f := range sp.Flows {
		buf = binary.AppendUvarint(buf, uint64(sp.ModuleIndex(f.From)))
		buf = binary.AppendUvarint(buf, uint64(sp.ModuleIndex(f.To)))
	}
	buf = binary.AppendUvarint(buf, uint64(len(sp.Conflicts)))
	for _, c := range sp.Conflicts {
		buf = binary.AppendUvarint(buf, uint64(c[0]))
		buf = binary.AppendUvarint(buf, uint64(c[1]))
	}
	buf = binary.AppendUvarint(buf, uint64(sp.Binding))
	buf = binary.AppendUvarint(buf, uint64(len(fixedKeys)))
	for _, k := range fixedKeys {
		buf = binary.AppendUvarint(buf, table.ref(k))
		buf = binary.AppendVarint(buf, int64(sp.FixedPins[k]))
	}
	buf = appendF64(buf, sp.Alpha)
	buf = appendF64(buf, sp.Beta)
	buf = binary.AppendUvarint(buf, uint64(sp.MaxSets))
	var specFlags byte
	if sp.Scalable {
		specFlags |= specFlagScalable
	}
	if sp.IsFPVA() {
		specFlags |= specFlagFPVA
	}
	buf = append(buf, specFlags)
	if sp.IsFPVA() {
		buf = binary.AppendUvarint(buf, uint64(sp.GridRows))
		buf = binary.AppendUvarint(buf, uint64(sp.GridCols))
	}

	// Pin binding, one pin per module in module order (prepare proved
	// coverage is exact).
	for _, m := range sp.Modules {
		buf = binary.AppendUvarint(buf, uint64(res.PinOf[m]))
	}

	// Plan metadata.
	buf = binary.AppendUvarint(buf, table.ref(res.Engine))
	var metaFlags byte
	if res.Proven {
		metaFlags |= metaFlagProven
	}
	if res.Degraded {
		metaFlags |= metaFlagDegraded
	}
	buf = append(buf, metaFlags)
	buf = appendF64(buf, res.LowerBound)
	buf = appendF64(buf, res.Gap)

	// Routes, in flow order.
	buf = binary.AppendUvarint(buf, uint64(len(res.Routes)))
	for i := range res.Routes {
		rt := &res.Routes[i]
		buf = binary.AppendUvarint(buf, uint64(rt.Set))
		buf = binary.AppendUvarint(buf, uint64(len(rt.Path.Verts)))
		for _, v := range rt.Path.Verts {
			buf = binary.AppendUvarint(buf, uint64(v))
		}
	}

	payloadLen := len(buf) - headerLen
	if payloadLen > math.MaxUint32 {
		return nil, fmt.Errorf("planio: frame payload %d bytes exceeds format limit", payloadLen)
	}
	binary.LittleEndian.PutUint32(buf[5:9], uint32(payloadLen))
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli)), nil
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// frameReader walks a payload with bounds-checked reads.
type frameReader struct {
	data []byte
	off  int
}

var errTruncated = fmt.Errorf("planio: truncated frame payload")

func (r *frameReader) remaining() int { return len(r.data) - r.off }

func (r *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	r.off += n
	return v, nil
}

// count reads a uvarint meant to size an allocation, bounding it by both
// a format cap and the bytes left in the payload (every counted element
// costs at least one byte), so corrupt frames cannot trigger huge
// allocations.
func (r *frameReader) count(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxFrameElems || v > uint64(r.remaining()) {
		return 0, fmt.Errorf("planio: %s count %d exceeds frame size", what, v)
	}
	return int(v), nil
}

// intVal reads a uvarint that must fit a non-negative int field.
func (r *frameReader) intVal(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("planio: %s value %d out of range", what, v)
	}
	return int(v), nil
}

func (r *frameReader) varintVal(what string) (int, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	r.off += n
	if v > math.MaxInt32 || v < math.MinInt32 {
		return 0, fmt.Errorf("planio: %s value %d out of range", what, v)
	}
	return int(v), nil
}

func (r *frameReader) byteVal() (byte, error) {
	if r.remaining() < 1 {
		return 0, errTruncated
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *frameReader) f64(what string) (float64, error) {
	if r.remaining() < 8 {
		return 0, errTruncated
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	if !finite(v) {
		return 0, fmt.Errorf("planio: non-finite %s", what)
	}
	return v, nil
}

func (r *frameReader) str(table []string, what string) (string, error) {
	v, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if v >= uint64(len(table)) {
		return "", fmt.Errorf("planio: %s string ref %d outside %d-entry table", what, v, len(table))
	}
	return table[v], nil
}

// DecodeBinary parses a binary plan frame, verifies its checksum, and
// reconstructs the plan through the same prepare/finalize validation as
// the JSON decoder. The caller should still contam-verify the result.
func DecodeBinary(data []byte) (*spec.Result, error) {
	if !IsBinary(data) {
		return nil, fmt.Errorf("planio: not a binary plan frame")
	}
	if len(data) < frameOverhead {
		return nil, fmt.Errorf("planio: frame shorter than %d-byte envelope", frameOverhead)
	}
	if data[4] != binaryVersion {
		return nil, fmt.Errorf("planio: unsupported frame version %d", data[4])
	}
	payloadLen := int(binary.LittleEndian.Uint32(data[5:9]))
	if len(data) != frameOverhead+payloadLen {
		return nil, fmt.Errorf("planio: frame length %d does not match declared payload %d", len(data), payloadLen)
	}
	body := data[:headerLen+payloadLen]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(data[headerLen+payloadLen:]); got != want {
		return nil, fmt.Errorf("planio: frame checksum mismatch (got %08x want %08x)", got, want)
	}
	r := &frameReader{data: body, off: headerLen}

	// String table.
	nStrs, err := r.count("string table")
	if err != nil {
		return nil, err
	}
	table := make([]string, 0, nStrs)
	for i := 0; i < nStrs; i++ {
		n, err := r.count("string length")
		if err != nil {
			return nil, err
		}
		if r.remaining() < n {
			return nil, errTruncated
		}
		s := string(r.data[r.off : r.off+n])
		r.off += n
		if !utf8.ValidString(s) {
			return nil, fmt.Errorf("planio: string table entry %d is not valid UTF-8", i)
		}
		table = append(table, s)
	}

	// Spec block.
	sp := &spec.Spec{}
	if sp.Name, err = r.str(table, "spec name"); err != nil {
		return nil, err
	}
	if sp.SwitchPins, err = r.intVal("switch pins"); err != nil {
		return nil, err
	}
	nMods, err := r.count("module")
	if err != nil {
		return nil, err
	}
	sp.Modules = make([]string, 0, nMods)
	for i := 0; i < nMods; i++ {
		m, err := r.str(table, "module name")
		if err != nil {
			return nil, err
		}
		sp.Modules = append(sp.Modules, m)
	}
	nFlows, err := r.count("flow")
	if err != nil {
		return nil, err
	}
	sp.Flows = make([]spec.Flow, 0, nFlows)
	for i := 0; i < nFlows; i++ {
		from, err := r.intVal("flow source")
		if err != nil {
			return nil, err
		}
		to, err := r.intVal("flow destination")
		if err != nil {
			return nil, err
		}
		if from >= len(sp.Modules) || to >= len(sp.Modules) {
			return nil, fmt.Errorf("planio: flow %d references module outside the %d-module list", i, len(sp.Modules))
		}
		sp.Flows = append(sp.Flows, spec.Flow{From: sp.Modules[from], To: sp.Modules[to]})
	}
	nConf, err := r.count("conflict")
	if err != nil {
		return nil, err
	}
	if nConf > 0 {
		sp.Conflicts = make([][2]int, 0, nConf)
	}
	for i := 0; i < nConf; i++ {
		a, err := r.intVal("conflict flow")
		if err != nil {
			return nil, err
		}
		b, err := r.intVal("conflict flow")
		if err != nil {
			return nil, err
		}
		sp.Conflicts = append(sp.Conflicts, [2]int{a, b})
	}
	binding, err := r.intVal("binding policy")
	if err != nil {
		return nil, err
	}
	sp.Binding = spec.BindingPolicy(binding)
	nFixed, err := r.count("fixed pin")
	if err != nil {
		return nil, err
	}
	if nFixed > 0 {
		sp.FixedPins = make(map[string]int, nFixed)
	}
	for i := 0; i < nFixed; i++ {
		k, err := r.str(table, "fixed pin module")
		if err != nil {
			return nil, err
		}
		p, err := r.varintVal("fixed pin")
		if err != nil {
			return nil, err
		}
		if _, dup := sp.FixedPins[k]; dup {
			return nil, fmt.Errorf("planio: duplicate fixed pin entry %q", k)
		}
		sp.FixedPins[k] = p
	}
	if sp.Alpha, err = r.f64("alpha"); err != nil {
		return nil, err
	}
	if sp.Beta, err = r.f64("beta"); err != nil {
		return nil, err
	}
	if sp.MaxSets, err = r.intVal("max sets"); err != nil {
		return nil, err
	}
	specFlags, err := r.byteVal()
	if err != nil {
		return nil, err
	}
	sp.Scalable = specFlags&specFlagScalable != 0
	if specFlags&specFlagFPVA != 0 {
		sp.Topology = spec.TopologyFPVA
		if sp.GridRows, err = r.intVal("grid rows"); err != nil {
			return nil, err
		}
		if sp.GridCols, err = r.intVal("grid cols"); err != nil {
			return nil, err
		}
	}

	// Pin binding.
	pinOf := make(map[string]int, len(sp.Modules))
	for _, m := range sp.Modules {
		p, err := r.intVal("pin binding")
		if err != nil {
			return nil, err
		}
		pinOf[m] = p
	}

	// Plan metadata.
	res := &spec.Result{Spec: sp, PinOf: pinOf}
	if res.Engine, err = r.str(table, "engine"); err != nil {
		return nil, err
	}
	metaFlags, err := r.byteVal()
	if err != nil {
		return nil, err
	}
	res.Proven = metaFlags&metaFlagProven != 0
	res.Degraded = metaFlags&metaFlagDegraded != 0
	if res.LowerBound, err = r.f64("lower bound"); err != nil {
		return nil, err
	}
	if res.Gap, err = r.f64("gap"); err != nil {
		return nil, err
	}

	// Routes.
	nRoutes, err := r.count("route")
	if err != nil {
		return nil, err
	}
	sw, err := prepare(sp, pinOf, nRoutes)
	if err != nil {
		return nil, err
	}
	res.Switch = sw
	res.Routes = make([]spec.Route, 0, nRoutes)
	for i := 0; i < nRoutes; i++ {
		set, err := r.intVal("route set")
		if err != nil {
			return nil, err
		}
		nVerts, err := r.count("route vertex")
		if err != nil {
			return nil, err
		}
		path, err := rebuildPathIDs(sw, r, nVerts)
		if err != nil {
			return nil, fmt.Errorf("planio: flow %d: %w", i, err)
		}
		res.Routes = append(res.Routes, spec.Route{Flow: i, Set: set, Path: path})
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("planio: %d unconsumed payload bytes", r.remaining())
	}
	if err := finalize(res); err != nil {
		return nil, err
	}
	return res, nil
}

// rebuildPathIDs is rebuildPath for vertex-ID sequences read straight
// off a frame: same segment-by-segment validation, without the
// name-lookup round trip.
func rebuildPathIDs(sw *topo.Switch, r *frameReader, nVerts int) (topo.Path, error) {
	if nVerts < 2 {
		return topo.Path{}, fmt.Errorf("path too short")
	}
	p := topo.Path{
		Verts:   make([]int, 0, nVerts),
		EdgeIDs: make([]int, 0, nVerts-1),
	}
	for i := 0; i < nVerts; i++ {
		v, err := r.intVal("vertex id")
		if err != nil {
			return topo.Path{}, err
		}
		if v >= len(sw.Vertices) {
			return topo.Path{}, fmt.Errorf("vertex %d outside the %d-vertex switch", v, len(sw.Vertices))
		}
		p.Verts = append(p.Verts, v)
		p.VertMask.Set(v)
		if i > 0 {
			e, ok := sw.EdgeBetween(p.Verts[i-1], v)
			if !ok {
				return topo.Path{}, fmt.Errorf("no segment %s-%s", sw.Vertices[p.Verts[i-1]].Name, sw.Vertices[v].Name)
			}
			p.EdgeIDs = append(p.EdgeIDs, e.ID)
			p.EdgeMask.Set(e.ID)
			p.Length += e.Length
		}
	}
	p.In = p.Verts[0]
	p.Out = p.Verts[len(p.Verts)-1]
	return p, nil
}
