package planio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"switchsynth/internal/contam"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

func solveFor(t *testing.T, sp *spec.Spec) *spec.Result {
	t.Helper()
	res, err := search.Solve(sp, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// resultsEqual compares the fields a serialized plan is expected to
// preserve.
func resultsEqual(t *testing.T, a, b *spec.Result) {
	t.Helper()
	ka, errA := a.Spec.CanonicalKey()
	kb, errB := b.Spec.CanonicalKey()
	if errA != nil || errB != nil {
		t.Fatalf("canonical key: %v / %v", errA, errB)
	}
	if ka != kb {
		t.Errorf("spec canonical key differs: %s vs %s", ka, kb)
	}
	if !reflect.DeepEqual(a.PinOf, b.PinOf) {
		t.Errorf("pin binding differs: %v vs %v", a.PinOf, b.PinOf)
	}
	if a.NumSets != b.NumSets || a.UsedEdgeMask != b.UsedEdgeMask || a.Length != b.Length {
		t.Errorf("derived fields differ: sets %d/%d mask %x/%x length %v/%v",
			a.NumSets, b.NumSets, a.UsedEdgeMask, b.UsedEdgeMask, a.Length, b.Length)
	}
	if a.Proven != b.Proven || a.Degraded != b.Degraded || a.LowerBound != b.LowerBound || a.Gap != b.Gap {
		t.Errorf("metadata differs: proven %v/%v degraded %v/%v lb %v/%v gap %v/%v",
			a.Proven, b.Proven, a.Degraded, b.Degraded, a.LowerBound, b.LowerBound, a.Gap, b.Gap)
	}
	if a.Engine != b.Engine {
		t.Errorf("engine differs: %q vs %q", a.Engine, b.Engine)
	}
	if len(a.Routes) != len(b.Routes) {
		t.Fatalf("route count differs: %d vs %d", len(a.Routes), len(b.Routes))
	}
	for i := range a.Routes {
		if a.Routes[i].Set != b.Routes[i].Set ||
			!reflect.DeepEqual(a.Routes[i].Path.Verts, b.Routes[i].Path.Verts) {
			t.Errorf("route %d differs", i)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	res := plan(t)
	frame, err := EncodeBinary(res)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBinary(frame) {
		t.Fatal("EncodeBinary output not recognized by IsBinary")
	}
	if ContentTypeOf(frame) != ContentTypeBinary {
		t.Fatalf("ContentTypeOf(frame) = %q", ContentTypeOf(frame))
	}
	back, err := DecodeBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if err := contam.Verify(back); err != nil {
		t.Fatalf("decoded plan fails contamination verify: %v", err)
	}
	resultsEqual(t, res, back)

	// Re-encoding the decoded plan must be byte-identical: the binary
	// encoding is canonical.
	again, err := EncodeBinary(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, again) {
		t.Fatal("binary encoding is not canonical: re-encode differs")
	}

	// DecodeAny sniffs both encodings.
	if _, err := DecodeAny(frame); err != nil {
		t.Fatalf("DecodeAny(binary): %v", err)
	}
	jsonBytes, err := EncodeWire(res)
	if err != nil {
		t.Fatal(err)
	}
	if ContentTypeOf(jsonBytes) != ContentTypeJSON {
		t.Fatalf("ContentTypeOf(json) = %q", ContentTypeOf(jsonBytes))
	}
	fromJSON, err := DecodeAny(jsonBytes)
	if err != nil {
		t.Fatalf("DecodeAny(json): %v", err)
	}
	resultsEqual(t, back, fromJSON)
}

func TestBinaryRoundTripDegradedMetadata(t *testing.T) {
	res := plan(t)
	res.Proven = false
	res.Degraded = true
	res.LowerBound = res.Objective / 2
	res.Gap = 0.5
	res.Engine = "anytime"
	frame, err := EncodeBinary(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, res, back)
}

func TestBinaryRoundTripFixedBinding(t *testing.T) {
	res := plan(t)
	// Re-home the plan onto a fixed binding matching its own PinOf so
	// FixedPins (string-table keys + signed pins) get exercised.
	res.Spec = &spec.Spec{
		Name:       res.Spec.Name,
		SwitchPins: res.Spec.SwitchPins,
		Modules:    res.Spec.Modules,
		Flows:      res.Spec.Flows,
		Conflicts:  res.Spec.Conflicts,
		Binding:    spec.Fixed,
		FixedPins:  res.PinOf,
	}
	frame, err := EncodeBinary(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Spec.FixedPins, res.Spec.FixedPins) {
		t.Fatalf("FixedPins differ: %v vs %v", back.Spec.FixedPins, res.Spec.FixedPins)
	}
	resultsEqual(t, res, back)
}

func TestToJSONTranscode(t *testing.T) {
	res := plan(t)
	frame, err := EncodeBinary(res)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := EncodeWire(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ToJSON(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wire) {
		t.Fatalf("transcoded JSON differs from EncodeWire:\n%s\nvs\n%s", got, wire)
	}
	// JSON input passes through untouched.
	passthrough, err := ToJSON(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(passthrough, wire) {
		t.Fatal("ToJSON modified JSON input")
	}
}

func TestBinaryDecodeRejectsCorruption(t *testing.T) {
	res := plan(t)
	frame, err := EncodeBinary(res)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func([]byte) []byte) []byte {
		cp := append([]byte(nil), frame...)
		return f(cp)
	}
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"magic only", frame[:4]},
		{"header only", frame[:headerLen]},
		{"truncated payload", frame[:len(frame)-6]},
		{"missing crc", frame[:len(frame)-4]},
		{"trailing byte", append(append([]byte(nil), frame...), 0)},
		{"bad version", mutate(func(b []byte) []byte { b[4] = 9; return b })},
		{"length lies short", mutate(func(b []byte) []byte { b[5]--; return b })},
		{"length lies long", mutate(func(b []byte) []byte { b[5]++; return b })},
		{"payload bit flip", mutate(func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b })},
		{"crc bit flip", mutate(func(b []byte) []byte { b[len(b)-1] ^= 1; return b })},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeBinary(tc.data); err == nil {
				t.Fatal("corrupted frame accepted")
			}
		})
	}
}

func TestBinaryDecodeRejectsEveryBitFlip(t *testing.T) {
	// The checksum must catch ANY single-byte change in the frame; bytes
	// whose change keeps the CRC valid do not exist for single flips.
	res := plan(t)
	frame, err := EncodeBinary(res)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		cp := append([]byte(nil), frame...)
		cp[i] ^= 0x01
		if _, err := DecodeBinary(cp); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}

// TestDecodeRejectsInconsistentPinOf is the regression test for the
// validation gap where PinOf entries were not checked against the spec's
// modules or the pin range.
func TestDecodeRejectsInconsistentPinOf(t *testing.T) {
	res := plan(t)
	good, err := EncodeWire(res)
	if err != nil {
		t.Fatal(err)
	}
	tamper := func(t *testing.T, edit func(map[string]any)) []byte {
		t.Helper()
		var doc map[string]any
		if err := json.Unmarshal(good, &doc); err != nil {
			t.Fatal(err)
		}
		edit(doc)
		out, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	pinOf := func(doc map[string]any) map[string]any { return doc["pinOf"].(map[string]any) }
	tests := []struct {
		name string
		edit func(map[string]any)
		want string
	}{
		{"pin out of range", func(doc map[string]any) { pinOf(doc)["a"] = 99 }, "outside"},
		{"negative pin", func(doc map[string]any) { pinOf(doc)["a"] = -1 }, "outside"},
		{"duplicate pin", func(doc map[string]any) {
			pinOf(doc)["a"] = pinOf(doc)["b"]
		}, "share pin"},
		{"unknown module", func(doc map[string]any) {
			p := pinOf(doc)
			p["ghost"] = p["a"]
			delete(p, "a")
		}, "no pin binding"},
		{"extra entry", func(doc map[string]any) { pinOf(doc)["ghost"] = 7 }, "covers"},
		{"missing entry", func(doc map[string]any) { delete(pinOf(doc), "a") }, "covers"},
		{"bad binding policy", func(doc map[string]any) {
			doc["spec"].(map[string]any)["binding"] = 7
		}, "binding policy"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tamper(t, tc.edit))
			if err == nil {
				t.Fatal("inconsistent binding accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestVerifiedCache(t *testing.T) {
	res := plan(t)
	frame, err := EncodeBinary(res)
	if err != nil {
		t.Fatal(err)
	}
	c := NewVerifiedCache(2)

	if _, ok := c.Lookup(frame, "k1"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Add(frame, "k1", res)
	got, ok := c.Lookup(frame, "k1")
	if !ok || got != res {
		t.Fatal("expected hit after Add")
	}
	// Same bytes under a different key must miss: the cache only vouches
	// for the (bytes, key) pair that was verified.
	if _, ok := c.Lookup(frame, "k2"); ok {
		t.Fatal("digest hit under the wrong key")
	}
	// Any byte difference misses.
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)/2] ^= 0x40
	if _, ok := c.Lookup(flipped, "k1"); ok {
		t.Fatal("digest hit for different bytes")
	}
	// Unproven plans are never admitted.
	degraded := *res
	degraded.Proven = false
	c.Add([]byte("deg"), "k3", &degraded)
	if _, ok := c.Lookup([]byte("deg"), "k3"); ok {
		t.Fatal("unproven plan admitted to digest cache")
	}
	// Eviction respects the bound.
	c.Add([]byte("b2"), "k2", res)
	c.Add([]byte("b3"), "k3", res)
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("cache holds %d entries, capacity 2", st.Entries)
	}
	if _, ok := c.Lookup(frame, "k1"); ok {
		t.Fatal("least-recently-used entry not evicted")
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Adds != 3 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestCrossFormatStability(t *testing.T) {
	res := plan(t)
	res.Engine = "search"
	frame, err := EncodeBinary(res)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := EncodeWire(res)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("json %d bytes, binary %d bytes", len(wire), len(frame))
	if len(frame) >= len(wire) {
		t.Errorf("binary frame (%d B) not smaller than JSON (%d B)", len(frame), len(wire))
	}
	// binary → JSON → binary must reproduce the original frame.
	viaJSON, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	frame2, err := EncodeBinary(viaJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, frame2) {
		t.Fatal("binary frame changed after a trip through JSON")
	}
	// JSON → binary → JSON likewise.
	viaBinary, err := DecodeBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	wire2, err := EncodeWire(viaBinary)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, wire2) {
		t.Fatal("JSON wire bytes changed after a trip through binary")
	}
}

func TestBinaryFrameSmallerAcrossSizes(t *testing.T) {
	for _, pins := range []int{8, 12} {
		t.Run(fmt.Sprintf("%dpin", pins), func(t *testing.T) {
			sp := &spec.Spec{
				Name:       fmt.Sprintf("size%d", pins),
				SwitchPins: pins,
				Modules:    []string{"a", "b", "x", "y"},
				Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
				Binding:    spec.Unfixed,
			}
			res := solveFor(t, sp)
			frame, err := EncodeBinary(res)
			if err != nil {
				t.Fatal(err)
			}
			wire, err := EncodeWire(res)
			if err != nil {
				t.Fatal(err)
			}
			if len(frame)*2 > len(wire) {
				t.Errorf("binary %d B vs json %d B: less than 2x smaller", len(frame), len(wire))
			}
		})
	}
}
