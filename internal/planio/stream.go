// Plan-stream framing: the persistent peer-fetch channel's wire format.
//
// A plan fetch over HTTP pays the full envelope — request parse, header
// serialization, chunked flush — per plan, which dominates the cost of
// moving a ~300-byte frame between nodes. The plan stream replaces that
// envelope with a length-prefixed exchange on a connection upgraded
// once per peer (HTTP/1.1 Upgrade on PlanStreamPath, so it shares the
// node's one listening port and old nodes simply 404):
//
//	request:  uvarint key length | key bytes
//	response: status byte (planFound / planMissing) | when found:
//	          uvarint data length | plan bytes (any planio format)
//
// The stream carries stored plan bytes verbatim — the same frames
// GET /plans/{key} serves to a binary-accepting client — so the
// receiver's verification pipeline (DecodeAny, key re-derivation, the
// digest cache) is format-agnostic between the two transports. Only
// the envelope changes; the trust model does not: stream bytes get the
// exact checks HTTP bytes get.
package planio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	// PlanStreamPath is the HTTP path a peer upgrades on; a node that
	// predates the stream protocol answers it 404 and the client falls
	// back to per-request GETs for good.
	PlanStreamPath = "/plans.stream"
	// PlanStreamProto names the protocol in the Upgrade header.
	PlanStreamProto = "switchsynth-plan-stream/1"

	// maxStreamKeyLen bounds a fetch request's key; canonical job keys
	// are well under this, so anything larger is a broken or hostile
	// peer and the server closes the stream.
	maxStreamKeyLen = 4096

	planFound   = 0x00
	planMissing = 0x01
)

// ErrStreamKeyTooLong reports a fetch request whose key exceeds
// maxStreamKeyLen.
var ErrStreamKeyTooLong = errors.New("planio: stream fetch key too long")

// WriteFetchRequest writes one plan-fetch request. The caller flushes.
func WriteFetchRequest(w *bufio.Writer, key string) error {
	if len(key) > maxStreamKeyLen {
		return ErrStreamKeyTooLong
	}
	var lb [binary.MaxVarintLen64]byte
	if _, err := w.Write(binary.AppendUvarint(lb[:0], uint64(len(key)))); err != nil {
		return err
	}
	_, err := w.WriteString(key)
	return err
}

// ReadFetchRequest reads one plan-fetch request, bounding the key
// length. io.EOF surfaces unwrapped so a server can tell an idle
// close (clean EOF between requests) from a truncated request.
func ReadFetchRequest(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxStreamKeyLen {
		return "", ErrStreamKeyTooLong
	}
	key := make([]byte, n)
	if _, err := io.ReadFull(r, key); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return "", err
	}
	return string(key), nil
}

// WriteFetchResponse writes one plan-fetch response. A nil-data found
// response is invalid and reported as missing. The caller flushes.
func WriteFetchResponse(w *bufio.Writer, data []byte, found bool) error {
	if !found || data == nil {
		return w.WriteByte(planMissing)
	}
	if err := w.WriteByte(planFound); err != nil {
		return err
	}
	var lb [binary.MaxVarintLen64]byte
	if _, err := w.Write(binary.AppendUvarint(lb[:0], uint64(len(data)))); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// ReadFetchResponse reads one plan-fetch response, bounding the plan to
// maxLen bytes (a larger length prefix is an error before any payload
// is read, so a lying peer cannot force a large allocation).
func ReadFetchResponse(r *bufio.Reader, maxLen int) (data []byte, found bool, err error) {
	st, err := r.ReadByte()
	if err != nil {
		return nil, false, err
	}
	switch st {
	case planMissing:
		return nil, false, nil
	case planFound:
	default:
		return nil, false, fmt.Errorf("planio: stream response status 0x%02x", st)
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, false, err
	}
	if n > uint64(maxLen) {
		return nil, false, fmt.Errorf("planio: stream plan of %d bytes exceeds %d", n, maxLen)
	}
	data = make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, false, err
	}
	return data, true, nil
}
