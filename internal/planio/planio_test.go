package planio

import (
	"strings"
	"testing"

	"switchsynth/internal/contam"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

func plan(t *testing.T) *spec.Result {
	t.Helper()
	sp := &spec.Spec{
		Name:       "roundtrip",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Unfixed,
	}
	res, err := search.Solve(sp, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRoundTrip(t *testing.T) {
	res := plan(t)
	data, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := contam.Verify(back); err != nil {
		t.Fatalf("decoded plan invalid: %v", err)
	}
	if back.NumSets != res.NumSets || back.UsedEdgeMask != res.UsedEdgeMask {
		t.Errorf("round trip changed the plan: sets %d→%d mask %x→%x",
			res.NumSets, back.NumSets, res.UsedEdgeMask, back.UsedEdgeMask)
	}
	if back.Length != res.Length {
		t.Errorf("length %v → %v", res.Length, back.Length)
	}
	for i := range res.Routes {
		if res.Routes[i].Set != back.Routes[i].Set ||
			res.Routes[i].Path.VertMask != back.Routes[i].Path.VertMask {
			t.Errorf("route %d differs after round trip", i)
		}
	}
	for m, p := range res.PinOf {
		if back.PinOf[m] != p {
			t.Errorf("binding of %s differs", m)
		}
	}
}

func TestRoundTripDegradedMetadata(t *testing.T) {
	res := plan(t)
	res.Proven = false
	res.Degraded = true
	res.LowerBound = res.Objective / 2
	res.Gap = 0.5
	data, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Proven || !back.Degraded {
		t.Errorf("Proven = %v, Degraded = %v after round trip", back.Proven, back.Degraded)
	}
	if back.LowerBound != res.LowerBound || back.Gap != res.Gap {
		t.Errorf("bound metadata changed: LowerBound %v→%v Gap %v→%v",
			res.LowerBound, back.LowerBound, res.Gap, back.Gap)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	res := plan(t)
	good, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(string) string
		want   string
	}{
		{"not json", func(s string) string { return "{broken" }, "planio"},
		{"bad version", func(s string) string {
			return strings.Replace(s, `"version": 1`, `"version": 99`, 1)
		}, "unsupported version"},
		{"unknown vertex", func(s string) string {
			return strings.Replace(s, `"C"`, `"Z9"`, 1)
		}, ""},
		{"broken adjacency", func(s string) string {
			// Swap two interior vertex names to break the segment chain.
			s = strings.Replace(s, `"T"`, `"@@"`, 1)
			s = strings.Replace(s, `"B"`, `"T"`, 1)
			return strings.Replace(s, `"@@"`, `"B"`, 1)
		}, ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(string(good))
			if mutated == string(good) {
				t.Skip("mutation not applicable to this plan")
			}
			_, err := Decode([]byte(mutated))
			if err == nil {
				// The mutation may happen to produce another valid plan
				// (e.g. a different but adjacent vertex); then the decoded
				// plan must at least fail full verification.
				back, _ := Decode([]byte(mutated))
				if verr := contam.Verify(back); verr == nil {
					t.Fatalf("corrupted plan decoded and verified")
				}
				return
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDecodeMissingSpec(t *testing.T) {
	if _, err := Decode([]byte(`{"version":1}`)); err == nil {
		t.Fatal("missing spec accepted")
	}
}

func TestDecodeRouteCountMismatch(t *testing.T) {
	res := plan(t)
	data, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the routes array.
	s := string(data)
	i := strings.Index(s, `"routes"`)
	j := strings.LastIndex(s, `]`)
	mutated := s[:i] + `"routes": []` + s[j+1:]
	if _, err := Decode([]byte(mutated)); err == nil {
		t.Fatal("route-less plan accepted")
	}
}
