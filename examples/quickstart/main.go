// Quickstart: synthesize a contamination-free 8-pin switch for two
// conflicting reagent flows and print the plan.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"switchsynth"
)

func main() {
	// Two reagents that must never touch the same channel: a DNA sample
	// and a second sample routed through the same switch to two mixers.
	sp := &switchsynth.Spec{
		Name:       "quickstart",
		SwitchPins: 8,
		Modules:    []string{"sampleA", "sampleB", "mix1", "mix2"},
		Flows: []switchsynth.Flow{
			{From: "sampleA", To: "mix1"},
			{From: "sampleB", To: "mix2"},
		},
		Conflicts: [][2]int{{0, 1}}, // the two samples must stay apart
		Binding:   switchsynth.Unfixed,
	}

	syn, err := switchsynth.Synthesize(sp, switchsynth.Options{PressureSharing: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(syn.Summary())
	fmt.Println()
	fmt.Println("module → pin binding:")
	for _, m := range sp.Modules {
		pin := syn.PinOf[m]
		fmt.Printf("  %-8s → %s\n", m, syn.Switch.Vertices[syn.Switch.PinVertex(pin)].Name)
	}
	fmt.Println("\nroutes (one line per flow):")
	for _, rt := range syn.Routes {
		f := sp.Flows[rt.Flow]
		fmt.Printf("  %s → %s in flow set %d, %.1f mm\n", f.From, f.To, rt.Set+1, rt.Path.Length)
	}
	fmt.Println("\nswitch (flow layer, '@' = bound pin, digits = flow sets):")
	fmt.Println(syn.ASCII())

	if err := os.WriteFile("quickstart.svg", []byte(syn.SVG()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.svg")
}
