// Nucleic-acid processor: the paper's second evaluation case (Table 4.1
// id 2, Figure 4.2(a)(c)).
//
// Three mixers each send their mixture to a dedicated reaction chamber; if
// any mixtures touch, the single-cell experiment fails. Under the paper's
// reconstruction the fixed and clockwise policies are provably infeasible
// (the conflicting transports cross), while the unfixed policy separates
// all three streams. The Columba-style spine baseline pollutes its central
// spine segment — the red-marked segment of Figure 4.2(c).
//
//	go run ./examples/nucleicacid
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"switchsynth"
)

func main() {
	sp := &switchsynth.Spec{
		Name:       "nucleic-acid",
		SwitchPins: 8,
		Modules:    []string{"M1", "M2", "RC1", "RC2", "M3", "RC3", "W"},
		Flows: []switchsynth.Flow{
			{From: "M1", To: "RC1"},
			{From: "M2", To: "RC2"},
			{From: "M3", To: "RC3"},
			{From: "M1", To: "W"},
		},
		Conflicts: [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}},
		Binding:   switchsynth.Unfixed,
		FixedPins: map[string]int{
			"M1": 1, "RC1": 5,
			"M2": 7, "RC2": 3,
			"M3": 0, "RC3": 2, "W": 6,
		},
	}

	// Fixed and clockwise: provably no contamination-free routing.
	for _, policy := range []switchsynth.BindingPolicy{switchsynth.Fixed, switchsynth.Clockwise} {
		trial := *sp
		trial.Binding = policy
		_, err := switchsynth.Synthesize(&trial, switchsynth.Options{TimeLimit: 15 * time.Second})
		var nosol *switchsynth.ErrNoSolution
		if errors.As(err, &nosol) {
			fmt.Printf("%-10s binding: no solution (proven — conflicting transports must cross)\n", policy)
		} else if err != nil {
			log.Fatal(err)
		} else {
			fmt.Printf("%-10s binding: unexpectedly solvable\n", policy)
		}
	}

	// Unfixed: the synthesizer separates all conflicting streams.
	syn, err := switchsynth.Synthesize(sp, switchsynth.Options{PressureSharing: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unfixed    binding: %s\n\n", syn.Summary())
	fmt.Println(syn.ASCII())
	if err := os.WriteFile("nucleic-acid.svg", []byte(syn.SVG()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote nucleic-acid.svg")

	// The spine baseline: every mixture crosses the same spine.
	rep, err := switchsynth.SpineBaseline(sp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nColumba-style spine: %d of 5 conflicting pairs polluted (%d junctions, %d segments)\n",
		rep.PollutedPairs, rep.ContaminatedNodes, rep.ContaminatedSegments)
	if err := os.WriteFile("nucleic-acid-spine.svg", []byte(rep.SVG), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote nucleic-acid-spine.svg")
}
