// Control routing: the thesis' declared future work, implemented.
//
// After synthesis, pressure sharing groups the essential valves onto shared
// control inlets; this example then routes the control layer — one
// Manhattan control net per group, from a 1 mm² border punch to every valve
// membrane the net drives — and reports channel lengths and parasitic
// flow-channel crossings.
//
//	go run ./examples/controlrouting
package main

import (
	"fmt"
	"log"
	"os"

	"switchsynth"
)

func main() {
	sp := &switchsynth.Spec{
		Name:       "control",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows: []switchsynth.Flow{
			{From: "a", To: "x"},
			{From: "b", To: "y"},
		},
		Binding: switchsynth.Fixed,
		// Crossing flows through the centre: four essential valves.
		FixedPins: map[string]int{"a": 1, "x": 5, "b": 7, "y": 3},
	}

	syn, err := switchsynth.Synthesize(sp, switchsynth.Options{
		PressureSharing: true,
		RouteControl:    true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(syn.Summary())
	fmt.Printf("\ncontrol layer: %d nets, %.1f mm of control channel, %d flow crossings\n",
		len(syn.Control.Nets), syn.Control.TotalLength, syn.Control.TotalCrossings)
	for _, net := range syn.Control.Nets {
		fmt.Printf("  net %d: inlet at (%.1f, %.1f), %.1f mm, drives", net.Group+1, net.Inlet.X, net.Inlet.Y, net.Length)
		for _, e := range net.Valves {
			fmt.Printf(" %s", syn.Switch.Edges[e].Name)
		}
		fmt.Println()
	}

	if err := os.WriteFile("control.svg", []byte(syn.SVG()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote control.svg (control nets and inlet punches overlaid)")
}
