// Wash recovery: what to do with the paper's "no solution" rows.
//
// Table 4.1 proves the nucleic-acid processor unsolvable under fixed
// binding: the conflicting transports must cross, so no strictly
// contamination-free routing exists. The wash-aware scheduler (after Hu et
// al.'s wash optimization, the related work the paper cites) recovers the
// case: it routes the flows with collision rules only, orders the flow
// sets, and inserts the minimum number of full-flush wash operations so
// that conflicting residues are always cleaned before the next conflicting
// fluid arrives.
//
//	go run ./examples/washrecovery
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"switchsynth"
)

func main() {
	sp := &switchsynth.Spec{
		Name:       "nucleic-acid-fixed",
		SwitchPins: 8,
		Modules:    []string{"M1", "M2", "RC1", "RC2", "M3", "RC3", "W"},
		Flows: []switchsynth.Flow{
			{From: "M1", To: "RC1"},
			{From: "M2", To: "RC2"},
			{From: "M3", To: "RC3"},
			{From: "M1", To: "W"},
		},
		Conflicts: [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}},
		Binding:   switchsynth.Fixed,
		FixedPins: map[string]int{
			"M1": 1, "RC1": 5,
			"M2": 7, "RC2": 3,
			"M3": 0, "RC3": 2, "W": 6,
		},
	}

	// Step 1: the strict synthesis proves there is no solution.
	_, err := switchsynth.Synthesize(sp, switchsynth.Options{TimeLimit: 15 * time.Second})
	var nosol *switchsynth.ErrNoSolution
	if !errors.As(err, &nosol) {
		log.Fatalf("expected a proven no-solution, got %v", err)
	}
	fmt.Println("strict synthesis:", err)

	// Step 2: recover with washes.
	plan, err := switchsynth.SynthesizeWithWashes(sp, switchsynth.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwash-aware schedule: %d flow sets, %d washes, %d conflicting pairs share channels\n",
		plan.Result.NumSets, plan.NumWashes, len(plan.SharedPairs))
	fmt.Println("\nexecution program:")
	for k, set := range plan.SetOrder {
		fmt.Printf("  phase %d: execute flow set %d:", k+1, set+1)
		for _, rt := range plan.Result.Routes {
			if rt.Set == set {
				f := sp.Flows[rt.Flow]
				fmt.Printf("  %s→%s", f.From, f.To)
			}
		}
		fmt.Println()
		if plan.WashAfter[k] {
			fmt.Println("  *** WASH: flush all switch channels ***")
		}
	}
}
