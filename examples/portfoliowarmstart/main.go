// Portfolio racing + similarity warm start: boots an in-process synthd
// engine with lane racing enabled, then drives it with the Go client
// the way an incremental design session would —
//
//  1. a cold solve of a base chip spec, raced across the branch-and-
//     bound and greedy lanes (first proof wins, losers cross-checked);
//
//  2. a solve of a one-edit neighbor (one flow and its outlet module
//     added), warm-started from the similarity index: the base plan is
//     adapted, re-verified and used as the starting incumbent — the
//     solve gets faster, the plan bytes stay exactly what a cold solve
//     returns;
//
//  3. the GET /portfolio counters showing the race wins, the warm-start
//     hit and the zero disagreement count.
//
//     go run ./examples/portfoliowarmstart
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"switchsynth"
	"switchsynth/client"
	"switchsynth/internal/service"
)

// base is an 8-pin chip with three reagent flows, two of which conflict.
func base(name string) *switchsynth.Spec {
	return &switchsynth.Spec{
		Name:       name,
		SwitchPins: 8,
		Modules:    []string{"sampleA", "sampleB", "mix1", "mix2", "waste"},
		Flows: []switchsynth.Flow{
			{From: "sampleA", To: "mix1"},
			{From: "sampleB", To: "mix2"},
			{From: "sampleA", To: "waste"},
		},
		Conflicts: [][2]int{{0, 1}},
		Binding:   switchsynth.Unfixed,
	}
}

// neighbor is base plus one flow to a new mixer — the kind of one-edit
// revision an interactive design session produces. The similarity index
// recognizes it as the base spec plus one flow and adapts the proven
// base plan into a starting incumbent.
func neighbor(name string) *switchsynth.Spec {
	sp := base(name)
	sp.Modules = append(sp.Modules, "mix3")
	sp.Flows = append(sp.Flows, switchsynth.Flow{From: "sampleB", To: "mix3"})
	return sp
}

func main() {
	// A real daemon would be `go run ./cmd/synthd -portfolio`; here the
	// engine and its HTTP surface run in-process so the example is
	// self-contained. The similarity index is on by default; racing is
	// the opt-in part.
	eng := service.New(service.Config{Workers: 2, Portfolio: true, PortfolioLanes: "search,greedy"})
	defer eng.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewHandler(eng)}
	go srv.Serve(ln)
	defer srv.Close()
	c, err := client.New(client.Config{BaseURL: "http://" + ln.Addr().String()})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	start := time.Now()
	cold, err := c.Synthesize(ctx, base("chip-v1"), service.RequestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold raced solve of chip-v1: %d flow sets, %.1f mm, proven=%v in %s\n",
		cold.NumSets, cold.LengthMM, cold.Proven,
		time.Since(start).Round(time.Millisecond))

	start = time.Now()
	warm, err := c.Synthesize(ctx, neighbor("chip-v2"), service.RequestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm-started solve of chip-v2 (one flow added): %d flow sets, %.1f mm, proven=%v in %s\n",
		warm.NumSets, warm.LengthMM, warm.Proven,
		time.Since(start).Round(time.Millisecond))

	ps, err := c.PortfolioStats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGET /portfolio:\n")
	fmt.Printf("  races %d (search wins %d, milp wins %d, greedy wins %d), disagreements %d\n",
		ps.Races, ps.LaneWinsSearch, ps.LaneWinsMILP, ps.LaneWinsGreedy, ps.Disagreements)
	fmt.Printf("  warm-start hits %d, misses %d; seeds adopted %d, rejected %d\n",
		ps.WarmStartHits, ps.WarmStartMisses, ps.SeedsAdopted, ps.SeedsRejected)
	fmt.Printf("  similarity index: %d/%d plans, %d lookups, %d hits\n",
		ps.SimIndex.Entries, ps.SimIndex.Capacity, ps.SimIndex.Lookups, ps.SimIndex.Hits)
	fmt.Println("\nplans are byte-identical with racing and warm starts on or off;")
	fmt.Println("the portfolio tier only changes when the answer arrives, never what it is.")
}
