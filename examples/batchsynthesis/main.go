// Batch + streaming synthesis through the admission tier: boots an
// in-process synthd engine on a loopback listener, then drives it with
// the Go client the way a design-space sweep would —
//
//  1. a batch of spec variants, deduplicated by canonical key (the
//     renamed/permuted copies never reach the solver), with per-item
//     outcomes so one invalid member cannot poison its batch-mates;
//
//  2. a streamed solve of a saturated 16-pin spec, printing each
//     anytime incumbent (a complete contamination-free plan, usable
//     before the optimality proof) as it improves.
//
//     go run ./examples/batchsynthesis
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"switchsynth"
	"switchsynth/client"
	"switchsynth/internal/service"
)

func main() {
	// A real daemon would be `go run ./cmd/synthd`; here the engine and
	// its HTTP surface run in-process so the example is self-contained.
	eng := service.New(service.Config{Workers: 2})
	defer eng.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewHandler(eng)}
	go srv.Serve(ln)
	defer srv.Close()

	c, err := client.New(client.Config{
		BaseURL: "http://" + ln.Addr().String(),
		Tenant:  "example-lab", // X-Synthd-Tenant on every request
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// --- 1. Batch sweep ---------------------------------------------
	// Four members, two canonical keys: the second is the first with
	// the module list permuted, the flows reordered and the conflict
	// flipped (same problem, so it dedups), the third varies the
	// objective weights (a genuinely new key), and the fourth is
	// invalid (flow to an unknown module).
	base := &switchsynth.Spec{
		Name:       "sweep-v1",
		SwitchPins: 8,
		Modules:    []string{"sample", "buffer", "mix1", "mix2"},
		Flows: []switchsynth.Flow{
			{From: "sample", To: "mix1"},
			{From: "buffer", To: "mix2"},
		},
		Conflicts: [][2]int{{0, 1}},
		Binding:   switchsynth.Unfixed,
	}
	permuted := &switchsynth.Spec{
		Name:       "sweep-v1-permuted",
		SwitchPins: 8,
		Modules:    []string{"mix2", "buffer", "mix1", "sample"},
		Flows: []switchsynth.Flow{
			{From: "buffer", To: "mix2"},
			{From: "sample", To: "mix1"},
		},
		Conflicts: [][2]int{{1, 0}},
		Binding:   switchsynth.Unfixed,
	}
	reweighted := *base
	reweighted.Name = "sweep-v2-beta200"
	reweighted.Beta = 200
	broken := *base
	broken.Name = "sweep-broken"
	broken.Flows = []switchsynth.Flow{{From: "sample", To: "nowhere"}}

	env, items, err := c.Batch(ctx, []service.BatchRequestItem{
		{Spec: base}, {Spec: permuted}, {Spec: &reweighted}, {Spec: &broken},
	}, service.RequestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: %d specs → %d distinct keys, %d solves, %d failed\n",
		env.Specs, env.DistinctKeys, env.Solves, env.Failed)
	for i, it := range items {
		switch {
		case it.Err != nil:
			fmt.Printf("  [%d] error: %v\n", i, it.Err)
		case it.Dedup:
			fmt.Printf("  [%d] %-16s dedup of key %.12s…\n", i, it.Response.Name, it.Key)
		default:
			fmt.Printf("  [%d] %-16s solved: %s\n", i, it.Response.Name, it.Response.Summary)
		}
	}

	// --- 2. Streaming refinement -------------------------------------
	// A 16-pin spec slow enough that the solver publishes degraded
	// incumbents before the proof. Each frame is a verified plan; a
	// caller could fabricate from seq 1 and swap in the final optimum.
	hard := &switchsynth.Spec{
		Name:       "stream-demo",
		SwitchPins: 16,
		Modules:    []string{"a", "b", "c", "o1", "o2", "o3", "o4"},
		Flows: []switchsynth.Flow{
			{From: "a", To: "o1"}, {From: "b", To: "o2"},
			{From: "c", To: "o3"}, {From: "a", To: "o4"},
		},
		Conflicts: [][2]int{{0, 1}, {1, 2}},
		Binding:   switchsynth.Unfixed,
	}
	start := time.Now()
	final, err := c.Stream(ctx, hard, service.RequestOptions{}, func(fr *service.SynthesizeResponse) error {
		fmt.Printf("stream: seq %d at %7.3fs  degraded plan, gap %.3f, objective %.0f\n",
			fr.Seq, time.Since(start).Seconds(), fr.Gap, fr.Objective)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream: proof at %7.3fs  proven=%v objective %.0f (%d flow sets, %d valves)\n",
		time.Since(start).Seconds(), final.Proven, final.Objective, final.NumSets, final.NumValves)
}
