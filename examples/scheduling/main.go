// Flow scheduling: the paper's Table 4.2 / Figure 4.4 example.
//
// Twelve modules surround a 12-pin switch in clockwise order; inputs 1, 2
// and 3 fan out to nine outputs. The synthesizer groups the flows into
// three parallel-executable flow sets so that within each set every channel
// carries fluid from one inlet only.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"switchsynth"
)

func main() {
	mods := make([]string, 12)
	for i := range mods {
		mods[i] = fmt.Sprint(i + 1)
	}
	sp := &switchsynth.Spec{
		Name:       "scheduling",
		SwitchPins: 12,
		Modules:    mods,
		Flows: []switchsynth.Flow{
			{From: "1", To: "7"}, {From: "1", To: "10"}, {From: "1", To: "11"},
			{From: "2", To: "5"}, {From: "2", To: "8"}, {From: "2", To: "9"},
			{From: "3", To: "4"}, {From: "3", To: "6"}, {From: "3", To: "12"},
		},
		Binding: switchsynth.Clockwise,
	}

	syn, err := switchsynth.Synthesize(sp, switchsynth.Options{
		TimeLimit:       20 * time.Second,
		PressureSharing: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(syn.Summary())
	fmt.Println("\nschedule (paper Table 4.2 reports 3 flow sets, 15 valves, 21.2 mm):")
	for s, routes := range syn.SetOf() {
		fmt.Printf("  flow set %d:", s+1)
		for _, rt := range routes {
			f := sp.Flows[rt.Flow]
			fmt.Printf("  %s→%s", f.From, f.To)
		}
		fmt.Println()
	}
	fmt.Println("\nessential valves and their status per set (O=open, C=closed, X=don't care):")
	for _, v := range syn.Valves.EssentialValves() {
		fmt.Printf("  %-10s %s\n", syn.Switch.Edges[v.Edge].Name, v.SequenceString())
	}
	fmt.Printf("\npressure sharing reduces %d valves to %d control inlets\n",
		syn.NumValves(), syn.ControlInlets())

	fmt.Println()
	fmt.Println(syn.ASCII())
	if err := os.WriteFile("scheduling.svg", []byte(syn.SVG()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote scheduling.svg (Figure 4.4)")
}
