// FPVA walkthrough: synthesize contamination-free routes on a 3×3
// fully programmable valve array, generate the minimal test-pattern set
// that detects every single valve fault, and localize an injected
// stuck-closed valve from the observations.
//
//	go run ./examples/fpva
package main

import (
	"fmt"
	"log"

	"switchsynth"
	"switchsynth/internal/fpva"
	"switchsynth/internal/topo"
)

func main() {
	// The same two-sample problem as examples/quickstart, but on a 3×3
	// valve-grid substrate instead of a crossbar: Topology selects the
	// FPVA and GridRows/GridCols size it (SwitchPins stays unset — the
	// grid derives its 2×(3+3) = 12 boundary ports itself).
	sp := &switchsynth.Spec{
		Name:     "fpva-walkthrough",
		Topology: switchsynth.TopologyFPVA,
		GridRows: 3,
		GridCols: 3,
		Modules:  []string{"sampleA", "sampleB", "mix1", "mix2"},
		Flows: []switchsynth.Flow{
			{From: "sampleA", To: "mix1"},
			{From: "sampleB", To: "mix2"},
		},
		Conflicts: [][2]int{{0, 1}}, // the two samples must stay apart
		Binding:   switchsynth.Unfixed,
	}

	syn, err := switchsynth.Synthesize(sp, switchsynth.Options{PressureSharing: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(syn.Summary())
	fmt.Println("\nmodule → port binding:")
	for _, m := range sp.Modules {
		pin := syn.PinOf[m]
		fmt.Printf("  %-8s → %s\n", m, syn.Switch.Vertices[syn.Switch.PinVertex(pin)].Name)
	}
	fmt.Println("\nroutes (one line per flow):")
	for _, rt := range syn.Routes {
		f := sp.Flows[rt.Flow]
		fmt.Printf("  %s → %s in flow set %d, %.1f mm\n", f.From, f.To, rt.Set+1, rt.Path.Length)
	}

	// Manufacturing test: every one of the grid's valves can fail
	// stuck-open (never seals) or stuck-closed (never conducts).
	// TestPatterns computes a minimal stimulus set — pressurize one
	// port, hold a chosen valve set open, observe which ports wet —
	// that distinguishes every such fault from a healthy chip.
	sw := syn.Switch
	patterns, err := fpva.TestPatterns(sw)
	if err != nil {
		log.Fatal(err)
	}
	faults := fpva.AllFaults(sw)
	fmt.Printf("\nfault model: %d valves, %d single faults\n", len(sw.Edges), len(faults))
	fmt.Printf("test patterns: %d (each row: source port, #open valves, expected wet ports)\n", len(patterns))
	for i, p := range patterns {
		fmt.Printf("  #%d  %-3s open=%-2d wet=%v\n", i+1,
			sw.Vertices[sw.PinVertex(p.Source)].Name,
			p.Open.OnesCount(), portNames(sw, p.Expect))
	}

	// Inject a stuck-closed fault on the first valve and replay the
	// pattern set: the observations diverge from Expect, and Diagnose
	// narrows the candidates to faults consistent with every pattern.
	injected := fpva.Fault{Edge: 0, Kind: fpva.StuckClosed}
	wet := make([]topo.Bits, len(patterns))
	for i, p := range patterns {
		wet[i] = fpva.Simulate(sw, p, &injected)
	}
	diag, err := fpva.Diagnose(sw, patterns, wet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninjected %s on valve %s\n", injected.Kind, edgeName(sw, injected.Edge))
	fmt.Printf("diagnosis: healthy=%v, %d candidate fault(s):\n", diag.Healthy, len(diag.Candidates))
	for _, f := range diag.Candidates {
		fmt.Printf("  %s on valve %s\n", f.Kind, edgeName(sw, f.Edge))
	}
}

// portNames renders a wet-port bitmask as the ports' clockwise names.
func portNames(sw *topo.Switch, wet topo.Bits) []string {
	var out []string
	for _, p := range wet.Indices() {
		out = append(out, sw.Vertices[sw.PinVertex(p)].Name)
	}
	return out
}

// edgeName renders one valve edge as "u—v".
func edgeName(sw *topo.Switch, e int) string {
	ed := sw.Edges[e]
	return sw.Vertices[ed.U].Name + "—" + sw.Vertices[ed.V].Name
}
