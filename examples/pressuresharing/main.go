// Pressure sharing: valve essentiality and control-inlet minimization
// (Section 3.5 of the paper).
//
// Two flows cross the 8-pin switch centre, so they execute in two flow
// sets; the four valves around the centre must close alternately while the
// stub valves never need to close and are removed. The compatible closing
// patterns then share control inlets via minimum clique cover.
//
//	go run ./examples/pressuresharing
package main

import (
	"fmt"
	"log"
	"os"

	"switchsynth"
)

func main() {
	sp := &switchsynth.Spec{
		Name:       "pressure",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows: []switchsynth.Flow{
			{From: "a", To: "x"},
			{From: "b", To: "y"},
		},
		Binding: switchsynth.Fixed,
		// T2 → B1 and L1 → R2: both cross the centre junction C.
		FixedPins: map[string]int{"a": 1, "x": 5, "b": 7, "y": 3},
	}

	syn, err := switchsynth.Synthesize(sp, switchsynth.Options{PressureSharing: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(syn.Summary())

	fmt.Printf("\nused segments: %d of %d (the rest are removed from the design)\n",
		len(syn.UsedEdges()), len(syn.Switch.Edges))
	fmt.Printf("valves on used segments: %d, essential after the carry rule: %d\n",
		len(syn.Valves.Valves), syn.NumValves())

	fmt.Println("\nall valve sequences (one column per flow set):")
	for _, v := range syn.Valves.Valves {
		marker := "removed (never closes)"
		if v.Essential {
			marker = "essential"
		}
		fmt.Printf("  %-8s %s  %s\n", syn.Switch.Edges[v.Edge].Name, v.SequenceString(), marker)
	}

	fmt.Printf("\npressure-sharing clique cover: %d control inlets\n", syn.ControlInlets())
	ess := syn.Valves.EssentialValves()
	for g, members := range syn.Pressure.Groups {
		fmt.Printf("  control inlet %d drives:", g+1)
		for _, m := range members {
			fmt.Printf(" %s", syn.Switch.Edges[ess[m].Edge].Name)
		}
		fmt.Println()
	}

	if err := os.WriteFile("pressure.svg", []byte(syn.SVG()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote pressure.svg (valve colors = pressure groups)")
}
