// ChIP: the paper's first evaluation case (Table 4.1 id 1, Figure 4.1).
//
// An automated chromatin-immunoprecipitation chip routes two DNA sample
// streams (inlets i10 and i11) to their mixers through one 12-pin switch;
// the samples conflict and must never share a channel. The example
// synthesizes the switch under all three binding policies and writes one
// SVG per policy — the reproduction of Figure 4.1(a)–(c).
//
//	go run ./examples/chip
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"switchsynth"
)

func main() {
	base := &switchsynth.Spec{
		Name:       "chip",
		SwitchPins: 12,
		Modules:    []string{"i10", "M1", "i12", "M5", "M6", "i11", "M2", "M3", "M4"},
		Flows: []switchsynth.Flow{
			{From: "i10", To: "M1"},
			{From: "i11", To: "M2"},
			{From: "i11", To: "M3"},
			{From: "i11", To: "M4"},
			{From: "i12", To: "M5"},
			{From: "i12", To: "M6"},
		},
		// The i10 sample conflicts with every i11 sample flow.
		Conflicts: [][2]int{{0, 1}, {0, 2}, {0, 3}},
		FixedPins: map[string]int{
			"i10": 0, "M1": 2,
			"i12": 3, "M5": 4, "M6": 5,
			"i11": 7, "M2": 6, "M3": 8, "M4": 9,
		},
	}

	for _, policy := range []switchsynth.BindingPolicy{
		switchsynth.Fixed, switchsynth.Clockwise, switchsynth.Unfixed,
	} {
		sp := *base
		sp.Binding = policy
		sp.Name = "chip-" + policy.String()
		syn, err := switchsynth.Synthesize(&sp, switchsynth.Options{
			TimeLimit:       15 * time.Second,
			PressureSharing: true,
		})
		var nosol *switchsynth.ErrNoSolution
		if errors.As(err, &nosol) {
			fmt.Printf("%-16s no solution\n", policy)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(syn.Summary())
		name := fmt.Sprintf("chip-%s.svg", policy)
		if err := os.WriteFile(name, []byte(syn.SVG()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("  wrote", name)
	}

	// Figure 4.1(d): what the same flows suffer on a Columba-style spine.
	rep, err := switchsynth.SpineBaseline(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nColumba-style spine baseline: %d polluted conflict pairs, %d contaminated junctions, %d contaminated segments\n",
		rep.PollutedPairs, rep.ContaminatedNodes, rep.ContaminatedSegments)
	if err := os.WriteFile("chip-spine-baseline.svg", []byte(rep.SVG), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote chip-spine-baseline.svg")
}
