module switchsynth

go 1.22
