package switchsynth

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func demoSpec() *Spec {
	return &Spec{
		Name:       "demo",
		SwitchPins: 8,
		Modules:    []string{"sample", "buffer", "mix1", "mix2"},
		Flows: []Flow{
			{From: "sample", To: "mix1"},
			{From: "buffer", To: "mix2"},
		},
		Conflicts: [][2]int{{0, 1}},
		Binding:   Unfixed,
	}
}

func TestSynthesizeEndToEnd(t *testing.T) {
	syn, err := Synthesize(demoSpec(), Options{PressureSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(syn.Result); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if syn.Length <= 0 || syn.NumSets < 1 {
		t.Errorf("degenerate plan: L=%v sets=%d", syn.Length, syn.NumSets)
	}
	if syn.Pressure == nil {
		t.Fatal("pressure sharing requested but missing")
	}
	if syn.ControlInlets() > syn.NumValves() {
		t.Errorf("pressure sharing increased inlets: %d > %d", syn.ControlInlets(), syn.NumValves())
	}
	sum := syn.Summary()
	for _, want := range []string{"demo", "8-pin", "unfixed", "L=", "#v=", "#s="} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary %q missing %q", sum, want)
		}
	}
}

func TestSynthesizeIQPEngine(t *testing.T) {
	sp := &Spec{
		Name:       "iqp-engine",
		SwitchPins: 8,
		Modules:    []string{"in", "out"},
		Flows:      []Flow{{From: "in", To: "out"}},
		Binding:    Fixed,
		FixedPins:  map[string]int{"in": 0, "out": 1},
	}
	syn, err := Synthesize(sp, Options{Engine: EngineIQP, TimeLimit: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if syn.Engine != "iqp" {
		t.Errorf("engine = %q", syn.Engine)
	}
}

func TestSynthesizeUnknownEngine(t *testing.T) {
	if _, err := Synthesize(demoSpec(), Options{Engine: "quantum"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestSynthesizeInvalidSpec(t *testing.T) {
	sp := demoSpec()
	sp.SwitchPins = 9
	if _, err := Synthesize(sp, Options{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestSynthesizeNoSolutionError(t *testing.T) {
	sp := &Spec{
		Name:       "nosol",
		SwitchPins: 8,
		Modules:    []string{"in1", "in2", "out1", "out2"},
		Flows:      []Flow{{From: "in1", To: "out1"}, {From: "in2", To: "out2"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    Fixed,
		FixedPins:  map[string]int{"in1": 0, "out1": 2, "in2": 1, "out2": 3},
	}
	_, err := Synthesize(sp, Options{})
	var nosol *ErrNoSolution
	if !errors.As(err, &nosol) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
}

func TestSVGAndASCIIRender(t *testing.T) {
	syn, err := Synthesize(demoSpec(), Options{PressureSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	svg := syn.SVG()
	if !strings.HasPrefix(svg, "<svg ") || !strings.Contains(svg, "</svg>") {
		t.Error("malformed SVG envelope")
	}
	for _, want := range []string{"circle", "line", "flow set 1", "sample"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	art := syn.ASCII()
	if !strings.Contains(art, "#") || !strings.Contains(art, "@") {
		t.Errorf("ASCII missing junctions or bound pins:\n%s", art)
	}
}

func TestNewSwitch(t *testing.T) {
	sw, err := NewSwitch(12)
	if err != nil {
		t.Fatal(err)
	}
	if sw.NumPins != 12 {
		t.Errorf("pins = %d", sw.NumPins)
	}
	if _, err := NewSwitch(9); err == nil {
		t.Error("bad size accepted")
	}
}

func TestScalableRenderVariant(t *testing.T) {
	sp := demoSpec()
	sp.Scalable = true
	syn, err := Synthesize(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(syn.SVG(), "polyline") {
		t.Error("scalable variant should draw horizontal pin leads")
	}
}

func TestSpineBaseline(t *testing.T) {
	rep, err := SpineBaseline(demoSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PollutedPairs == 0 {
		t.Error("conflicting flows on a spine should pollute")
	}
	if !strings.Contains(rep.SVG, "</svg>") {
		t.Error("baseline SVG malformed")
	}
	bad := demoSpec()
	bad.SwitchPins = 9
	if _, err := SpineBaseline(bad); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestSynthesizeWithControlRouting(t *testing.T) {
	sp := &Spec{
		Name:       "ctrl-e2e",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Binding:    Fixed,
		FixedPins:  map[string]int{"a": 1, "x": 5, "b": 7, "y": 3},
	}
	syn, err := Synthesize(sp, Options{PressureSharing: true, RouteControl: true})
	if err != nil {
		t.Fatal(err)
	}
	if syn.Control == nil {
		t.Fatal("control plan missing")
	}
	if len(syn.Control.Nets) != syn.ControlInlets() {
		t.Errorf("nets = %d, control inlets = %d", len(syn.Control.Nets), syn.ControlInlets())
	}
	if !strings.Contains(syn.SVG(), "control inlet") {
		t.Error("SVG missing the control overlay")
	}
}

func TestSynthesisSimulatesClean(t *testing.T) {
	syn, err := Synthesize(demoSpec(), Options{PressureSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := syn.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		for _, e := range rep.Events {
			t.Log(e)
		}
		t.Fatal("verified synthesis must simulate clean")
	}
}

func TestSynthesizeWithWashesPublicAPI(t *testing.T) {
	sp := &Spec{
		Name:       "wash-api",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    Fixed,
		FixedPins:  map[string]int{"a": 1, "x": 5, "b": 7, "y": 3},
	}
	plan, err := SynthesizeWithWashes(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumWashes != 1 {
		t.Errorf("washes = %d, want 1", plan.NumWashes)
	}
	bad := *sp
	bad.SwitchPins = 9
	if _, err := SynthesizeWithWashes(&bad, Options{}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestControlInletsWithoutPressureSharing(t *testing.T) {
	sp := &Spec{
		Name:       "no-pressure",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Binding:    Fixed,
		FixedPins:  map[string]int{"a": 1, "x": 5, "b": 7, "y": 3},
	}
	syn, err := Synthesize(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Without pressure sharing, every essential valve needs its own inlet.
	if syn.ControlInlets() != syn.NumValves() {
		t.Errorf("inlets = %d, valves = %d", syn.ControlInlets(), syn.NumValves())
	}
}

func TestAlphaDominantObjectivePrefersFewerSets(t *testing.T) {
	// With α ≫ β the optimizer must avoid opening flow sets even at the
	// cost of longer, disjoint channels; with the paper's defaults (β
	// dominates) the same case may prefer shorter shared channels.
	sp := &Spec{
		Name:       "alpha-dom",
		SwitchPins: 12,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Binding:    Unfixed,
		Alpha:      1e6,
		Beta:       1,
	}
	syn, err := Synthesize(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if syn.NumSets != 1 {
		t.Errorf("α-dominant objective produced %d sets, want 1", syn.NumSets)
	}
}

func TestMaxSetsIsRespected(t *testing.T) {
	sp := &Spec{
		Name:       "maxsets",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Binding:    Fixed,
		FixedPins:  map[string]int{"a": 1, "x": 5, "b": 7, "y": 3},
		MaxSets:    1,
	}
	if _, err := Synthesize(sp, Options{}); err == nil {
		t.Error("crossing flows with MaxSets=1 should be infeasible")
	}
}

func TestTwentyFourPinEndToEnd(t *testing.T) {
	sp := &Spec{
		Name:       "24pin",
		SwitchPins: 24,
		Modules:    []string{"in", "o1", "o2", "o3"},
		Flows: []Flow{
			{From: "in", To: "o1"},
			{From: "in", To: "o2"},
			{From: "in", To: "o3"},
		},
		Binding: Unfixed,
	}
	syn, err := Synthesize(sp, Options{TimeLimit: 30 * time.Second, PressureSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(syn.Result); err != nil {
		t.Fatal(err)
	}
	rep, err := syn.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Error("24-pin plan simulated dirty")
	}
}

func TestSynthesizeContextCancelledBothEngines(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, engine := range []string{EngineSearch, EngineIQP} {
		_, err := SynthesizeContext(ctx, demoSpec(), Options{Engine: engine})
		if !errors.Is(err, &ErrTimeout{}) {
			t.Errorf("engine %s: err = %v, want *ErrTimeout", engine, err)
		}
		var te *ErrTimeout
		if !errors.As(err, &te) || te.SpecName != "demo" {
			t.Errorf("engine %s: spec name not carried: %+v", engine, te)
		}
	}
}

func TestCanonicalKeyPublicAPI(t *testing.T) {
	k1, err := CanonicalKey(demoSpec())
	if err != nil {
		t.Fatal(err)
	}
	renamed := demoSpec()
	renamed.Name = "something-else"
	k2, err := CanonicalKey(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("renamed spec changed the canonical key")
	}
	bad := demoSpec()
	bad.SwitchPins = 9
	if _, err := CanonicalKey(bad); err == nil {
		t.Error("invalid spec got a canonical key")
	}
}
