// Package client is the Go client for a synthd daemon
// (cmd/synthd): it submits synthesis requests over HTTP with
// context-aware retries, exponential backoff with full jitter, and
// idempotency keyed on the spec's canonical key.
//
// Retry policy: network errors and the shed-load statuses (429, 502,
// 503, 504) are retried up to Config.MaxAttempts times; a Retry-After
// header from the daemon's circuit breaker or drain window — either the
// delay-seconds or the HTTP-date form — overrides the computed backoff.
// All other statuses — including 422 no-solution, which is an
// infeasibility proof — fail immediately. Requests carry an
// Idempotency-Key header equal to spec.CanonicalKey, so retries of the
// same spec land on the daemon's result cache (or coalesce onto an
// in-flight solve) instead of repeating work.
//
// Against a sharded deployment (Config.Peers), the client computes each
// spec's owning node with the same rendezvous ring the daemons use and
// sends the request there directly, skipping the server-side forwarding
// hop; retries walk down the preference order, so a dead owner degrades
// to the next-ranked node instead of burning attempts on one host.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"switchsynth"
	"switchsynth/internal/cluster"
	"switchsynth/internal/service"
)

// Config configures a Client.
type Config struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport (default: a plain http.Client;
	// deadlines come from the caller's context).
	HTTPClient *http.Client
	// MaxAttempts bounds the total tries per request, first attempt
	// included (default 4; negative disables retries entirely).
	MaxAttempts int
	// BaseBackoff is the first retry's backoff cap (default 100ms); the
	// cap doubles per attempt up to MaxBackoff (default 2s). The actual
	// sleep is uniform in [0, cap): full jitter, so synchronized clients
	// spread out instead of retrying in lockstep.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed makes the jitter deterministic for tests; 0 seeds from the
	// clock.
	Seed int64
	// Peers, when non-empty, is the cluster's static peer list in the
	// daemon's -peers format ("id=url,..."). The client then routes each
	// request to the spec's owning node (owner-first routing) and walks
	// down the preference order on retries. BaseURL becomes optional and
	// is only used for the non-spec endpoints (Metrics, Healthz),
	// defaulting to the first peer.
	Peers string
}

// Client is a synthd HTTP client; safe for concurrent use.
type Client struct {
	base        string
	ring        *cluster.Ring // nil without Config.Peers
	hc          *http.Client
	maxAttempts int
	baseBackoff time.Duration
	maxBackoff  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// APIError is a non-2xx daemon response, carrying the service error
// taxonomy (kind "invalid", "no-solution", "timeout", "overloaded",
// "unavailable", "panic", "internal") and any Retry-After hint.
type APIError struct {
	Status     int
	Kind       string
	Message    string
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("synthd: %s (%d %s)", e.Message, e.Status, e.Kind)
}

// Temporary reports whether retrying the same request can succeed.
func (e *APIError) Temporary() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// New creates a client for the daemon at cfg.BaseURL (or the cluster
// listed in cfg.Peers).
func New(cfg Config) (*Client, error) {
	var ring *cluster.Ring
	if cfg.Peers != "" {
		nodes, err := cluster.ParsePeers(cfg.Peers)
		if err != nil {
			return nil, fmt.Errorf("client: %w", err)
		}
		if len(nodes) == 0 {
			return nil, fmt.Errorf("client: Peers is blank")
		}
		ring = cluster.NewRing(nodes)
		if cfg.BaseURL == "" {
			cfg.BaseURL = nodes[0].URL
		}
	}
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: BaseURL is required")
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	attempts := cfg.MaxAttempts
	switch {
	case attempts < 0:
		attempts = 1
	case attempts == 0:
		attempts = 4
	}
	base := cfg.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := cfg.MaxBackoff
	if max <= 0 {
		max = 2 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{
		base:        strings.TrimRight(cfg.BaseURL, "/"),
		ring:        ring,
		hc:          hc,
		maxAttempts: attempts,
		baseBackoff: base,
		maxBackoff:  max,
		rng:         rand.New(rand.NewSource(seed)),
	}, nil
}

// Synthesize submits sp and returns the daemon's response, retrying
// transient failures until ctx is done or MaxAttempts is exhausted.
func (c *Client) Synthesize(ctx context.Context, sp *switchsynth.Spec, opts service.RequestOptions) (*service.SynthesizeResponse, error) {
	// The canonical key both validates the spec locally (no round trip
	// for garbage) and keys idempotent retries.
	key, err := switchsynth.CanonicalKey(sp)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(service.SynthesizeRequest{Spec: sp, Options: opts})
	if err != nil {
		return nil, err
	}
	targets := c.targets(sp, opts)

	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, attempt, lastErr); err != nil {
				return nil, err
			}
		}
		out, err := c.once(ctx, targets[attempt%len(targets)], key, body)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, err
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && !apiErr.Temporary() {
			return nil, err
		}
		// Network errors and temporary statuses fall through to retry.
	}
	return nil, lastErr
}

// targets returns the bases to try, in attempt order. Without a peer
// ring there is one: BaseURL. With one, the ring's full preference
// order for the spec's job key — the first attempt goes straight to
// the owner (same cache-locality win as the server-side proxy, minus
// the extra hop), and each retry moves to the next-ranked node so a
// dead owner costs one attempt, not all of them.
func (c *Client) targets(sp *switchsynth.Spec, opts service.RequestOptions) []string {
	if c.ring == nil {
		return []string{c.base}
	}
	jobKey, err := service.JobKey(sp, switchsynth.Options{Engine: opts.Engine})
	if err != nil {
		// The spec failed canonicalization; let the daemon report it.
		return []string{c.base}
	}
	rank := c.ring.Rank(jobKey)
	targets := make([]string, len(rank))
	for i, n := range rank {
		targets[i] = strings.TrimRight(n.URL, "/")
	}
	return targets
}

// once performs a single POST /synthesize round trip against base.
func (c *Client) once(ctx context.Context, base, key string, body []byte) (*service.SynthesizeResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/synthesize", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readAPIError(resp)
	}
	var out service.SynthesizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	return &out, nil
}

// sleep waits the retry backoff before attempt: the server's Retry-After
// hint when present, otherwise full jitter under an exponentially
// doubling cap. Returns early with ctx.Err() on cancellation.
func (c *Client) sleep(ctx context.Context, attempt int, lastErr error) error {
	var wait time.Duration
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > 0 {
		wait = apiErr.RetryAfter
	} else {
		cap := c.baseBackoff << (attempt - 1)
		if cap > c.maxBackoff {
			cap = c.maxBackoff
		}
		c.mu.Lock()
		wait = time.Duration(c.rng.Float64() * float64(cap))
		c.mu.Unlock()
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Metrics fetches the daemon's /metrics snapshot (no retries).
func (c *Client) Metrics(ctx context.Context) (*service.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readAPIError(resp)
	}
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("client: decoding metrics: %w", err)
	}
	return &snap, nil
}

// Healthz probes the daemon's liveness endpoint (no retries).
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readAPIError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// readAPIError decodes the daemon's JSON error envelope and Retry-After
// header into an *APIError.
func readAPIError(resp *http.Response) error {
	apiErr := &APIError{Status: resp.StatusCode, Kind: "internal"}
	var envelope struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(data, &envelope); err == nil && envelope.Kind != "" {
		apiErr.Kind = envelope.Kind
		apiErr.Message = envelope.Error
	} else {
		apiErr.Message = strings.TrimSpace(string(data))
	}
	if apiErr.Message == "" {
		apiErr.Message = http.StatusText(resp.StatusCode)
	}
	// Retry-After comes in two RFC 9110 forms: delay-seconds and
	// HTTP-date. Proxies in front of the daemon may rewrite one into the
	// other, so honor both.
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		} else if at, err := http.ParseTime(ra); err == nil {
			if d := time.Until(at); d > 0 {
				apiErr.RetryAfter = d
			}
		}
	}
	return apiErr
}
