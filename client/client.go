// Package client is the Go client for a synthd daemon
// (cmd/synthd): it submits synthesis requests over HTTP with
// context-aware retries, exponential backoff with full jitter, and
// idempotency keyed on the spec's canonical key.
//
// Retry policy: network errors and the shed-load statuses (429, 502,
// 503, 504) are retried up to Config.MaxAttempts times; a Retry-After
// header from the daemon's circuit breaker or drain window — either the
// delay-seconds or the HTTP-date form — overrides the computed backoff.
// All other statuses — including 422 no-solution, which is an
// infeasibility proof — fail immediately. Requests carry an
// Idempotency-Key header equal to spec.CanonicalKey, so retries of the
// same spec land on the daemon's result cache (or coalesce onto an
// in-flight solve) instead of repeating work.
//
// Against a sharded deployment (Config.Peers), the client computes each
// spec's owning node with the same rendezvous ring the daemons use and
// sends the request there directly, skipping the server-side forwarding
// hop; retries walk down the preference order, so a dead owner degrades
// to the next-ranked node instead of burning attempts on one host —
// and a transport failure (connection refused, reset) fails over to
// the successor immediately, without the backoff sleep, since backoff
// paces overload, not node death.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"switchsynth"
	"switchsynth/internal/cluster"
	"switchsynth/internal/service"
)

// Config configures a Client.
type Config struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport (default: a plain http.Client;
	// deadlines come from the caller's context).
	HTTPClient *http.Client
	// MaxAttempts bounds the total tries per request, first attempt
	// included (default 4; negative disables retries entirely).
	MaxAttempts int
	// BaseBackoff is the first retry's backoff cap (default 100ms); the
	// cap doubles per attempt up to MaxBackoff (default 2s). The actual
	// sleep is uniform in [0, cap): full jitter, so synchronized clients
	// spread out instead of retrying in lockstep.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed makes the jitter deterministic for tests; 0 seeds from the
	// clock.
	Seed int64
	// Peers, when non-empty, is the cluster's static peer list in the
	// daemon's -peers format ("id=url,..."). The client then routes each
	// request to the spec's owning node (owner-first routing) and walks
	// down the preference order on retries. BaseURL becomes optional and
	// is only used for the non-spec endpoints (Metrics, Healthz),
	// defaulting to the first peer.
	Peers string
	// Tenant names this client in the daemon's per-tenant fair queue
	// (sent as X-Synthd-Tenant; empty means the daemon's default tenant).
	Tenant string
	// Priority is the admission class for this client's solves:
	// "interactive", "batch" or "background". Empty defers to the
	// endpoint's default (interactive for Synthesize/Stream, batch for
	// Batch). The daemon rejects unknown classes with a 400.
	Priority string
}

// Client is a synthd HTTP client; safe for concurrent use.
type Client struct {
	base        string
	ring        *cluster.Ring // nil without Config.Peers
	hc          *http.Client
	maxAttempts int
	baseBackoff time.Duration
	maxBackoff  time.Duration
	tenant      string
	priority    string

	mu  sync.Mutex
	rng *rand.Rand
}

// APIError is a non-2xx daemon response, carrying the service error
// taxonomy (kind "invalid", "no-solution", "timeout", "overloaded",
// "unavailable", "panic", "internal") and any Retry-After hint.
type APIError struct {
	Status     int
	Kind       string
	Message    string
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("synthd: %s (%d %s)", e.Message, e.Status, e.Kind)
}

// Temporary reports whether retrying the same request can succeed.
func (e *APIError) Temporary() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// New creates a client for the daemon at cfg.BaseURL (or the cluster
// listed in cfg.Peers).
func New(cfg Config) (*Client, error) {
	var ring *cluster.Ring
	if cfg.Peers != "" {
		nodes, err := cluster.ParsePeers(cfg.Peers)
		if err != nil {
			return nil, fmt.Errorf("client: %w", err)
		}
		if len(nodes) == 0 {
			return nil, fmt.Errorf("client: Peers is blank")
		}
		ring = cluster.NewRing(nodes)
		if cfg.BaseURL == "" {
			cfg.BaseURL = nodes[0].URL
		}
	}
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: BaseURL is required")
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	attempts := cfg.MaxAttempts
	switch {
	case attempts < 0:
		attempts = 1
	case attempts == 0:
		attempts = 4
	}
	base := cfg.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := cfg.MaxBackoff
	if max <= 0 {
		max = 2 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{
		base:        strings.TrimRight(cfg.BaseURL, "/"),
		ring:        ring,
		hc:          hc,
		maxAttempts: attempts,
		baseBackoff: base,
		maxBackoff:  max,
		tenant:      cfg.Tenant,
		priority:    cfg.Priority,
		rng:         rand.New(rand.NewSource(seed)),
	}, nil
}

// setIdentity attaches the admission identity headers configured on the
// client; absent values defer to the daemon's per-endpoint defaults.
func (c *Client) setIdentity(req *http.Request) {
	if c.tenant != "" {
		req.Header.Set(service.TenantHeader, c.tenant)
	}
	if c.priority != "" {
		req.Header.Set(service.PriorityHeader, c.priority)
	}
}

// Synthesize submits sp and returns the daemon's response, retrying
// transient failures until ctx is done or MaxAttempts is exhausted.
func (c *Client) Synthesize(ctx context.Context, sp *switchsynth.Spec, opts service.RequestOptions) (*service.SynthesizeResponse, error) {
	// The canonical key both validates the spec locally (no round trip
	// for garbage) and keys idempotent retries.
	key, err := switchsynth.CanonicalKey(sp)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(service.SynthesizeRequest{Spec: sp, Options: opts})
	if err != nil {
		return nil, err
	}
	targets := c.targets(sp, opts)

	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 && !(transportFailure(lastErr) && len(targets) > 1) {
			if err := c.sleep(ctx, attempt, lastErr); err != nil {
				return nil, err
			}
		}
		out, err := c.once(ctx, targets[attempt%len(targets)], key, body)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, err
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && !apiErr.Temporary() {
			return nil, err
		}
		// Network errors and temporary statuses fall through to retry.
	}
	return nil, lastErr
}

// targets returns the bases to try, in attempt order. Without a peer
// ring there is one: BaseURL. With one, the ring's full preference
// order for the spec's job key — the first attempt goes straight to
// the owner (same cache-locality win as the server-side proxy, minus
// the extra hop), and each retry moves to the next-ranked node so a
// dead owner costs one attempt, not all of them.
func (c *Client) targets(sp *switchsynth.Spec, opts service.RequestOptions) []string {
	if c.ring == nil {
		return []string{c.base}
	}
	jobKey, err := service.JobKey(sp, switchsynth.Options{Engine: opts.Engine})
	if err != nil {
		// The spec failed canonicalization; let the daemon report it.
		return []string{c.base}
	}
	rank := c.ring.Rank(jobKey)
	targets := make([]string, len(rank))
	for i, n := range rank {
		targets[i] = strings.TrimRight(n.URL, "/")
	}
	return targets
}

// once performs a single POST /synthesize round trip against base.
func (c *Client) once(ctx context.Context, base, key string, body []byte) (*service.SynthesizeResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/synthesize", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	c.setIdentity(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readAPIError(resp)
	}
	var out service.SynthesizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	return &out, nil
}

// transportFailure reports whether err is a network-level failure — no
// daemon response at all — rather than a daemon verdict (*APIError).
// When the next attempt targets a different node (owner→successor
// failover), a transport failure skips the backoff sleep entirely:
// backoff paces retries against an overloaded daemon, and a dead host
// says nothing about the health of its successor.
func transportFailure(err error) bool {
	var apiErr *APIError
	return err != nil && !errors.As(err, &apiErr)
}

// sleep waits the retry backoff before attempt: the server's Retry-After
// hint when present, otherwise full jitter under an exponentially
// doubling cap. Returns early with ctx.Err() on cancellation.
func (c *Client) sleep(ctx context.Context, attempt int, lastErr error) error {
	var wait time.Duration
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > 0 {
		wait = apiErr.RetryAfter
	} else {
		cap := c.baseBackoff << (attempt - 1)
		if cap > c.maxBackoff {
			cap = c.maxBackoff
		}
		c.mu.Lock()
		wait = time.Duration(c.rng.Float64() * float64(cap))
		c.mu.Unlock()
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// BatchItem is one member's outcome from Batch. Exactly one of Response
// or Err is set: a failed member carries an *APIError with the daemon's
// per-item kind/status taxonomy ("invalid", "overloaded", ...), so one
// shed or malformed member never hides its neighbours' plans.
type BatchItem struct {
	// Key is the member's canonical job key (empty when the spec never
	// canonicalized).
	Key string
	// Dedup marks a member answered by adapting another member's plan
	// from the same batch instead of a solve of its own.
	Dedup    bool
	Response *service.SynthesizeResponse
	Err      error
}

// Batch submits the members in one POST /synthesize/batch: the daemon
// canonicalizes and dedups them against each other and its cache tiers,
// solving once per distinct canonical key. It returns the envelope plus
// one BatchItem per input, in input order. opts are the batch-level
// defaults; a member's own Options override them. The whole batch is
// retried on transient envelope-level failures (the request is
// idempotent — every member lands on the daemon's result cache), and
// per-item failures are reported in the items, never as a method error.
//
// Batches are sent to BaseURL even when Peers is set: a batch spans many
// canonical keys, so there is no single owning node to route to.
func (c *Client) Batch(ctx context.Context, items []service.BatchRequestItem, opts service.RequestOptions) (*service.BatchResponse, []BatchItem, error) {
	body, err := json.Marshal(service.BatchRequest{Specs: items, Options: opts})
	if err != nil {
		return nil, nil, err
	}
	var (
		envelope *service.BatchResponse
		lastErr  error
	)
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, attempt, lastErr); err != nil {
				return nil, nil, err
			}
		}
		envelope, lastErr = c.batchOnce(ctx, body)
		if lastErr == nil {
			break
		}
		if ctx.Err() != nil {
			return nil, nil, lastErr
		}
		var apiErr *APIError
		if errors.As(lastErr, &apiErr) && !apiErr.Temporary() {
			return nil, nil, lastErr
		}
	}
	if lastErr != nil {
		return nil, nil, lastErr
	}
	out := make([]BatchItem, len(envelope.Items))
	for i, it := range envelope.Items {
		out[i] = BatchItem{Key: it.Key, Dedup: it.Dedup, Response: it.Response}
		if it.Response == nil {
			out[i].Err = &APIError{Status: it.Status, Kind: it.Kind, Message: it.Error}
		}
	}
	return envelope, out, nil
}

// batchOnce performs a single POST /synthesize/batch round trip.
func (c *Client) batchOnce(ctx context.Context, body []byte) (*service.BatchResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/synthesize/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.setIdentity(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readAPIError(resp)
	}
	var out service.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding batch response: %w", err)
	}
	return &out, nil
}

// Stream submits sp with ?wait=proof and follows the daemon's ndjson
// stream: onFrame (optional) receives every anytime incumbent — a
// Degraded plan with a Gap — as the solver improves, and Stream returns
// the final proven response, whose plan is byte-identical to what a
// plain Synthesize of the same spec returns. A non-nil error from
// onFrame abandons the stream (the daemon's solve continues; its result
// still lands in the cache).
//
// Admission failures before the first frame (429/503) are retried like
// Synthesize, honoring Retry-After. Once frames are flowing there are
// no retries — a broken stream returns an error and the caller may call
// Stream again, which attaches to the in-flight solve instead of
// restarting it.
func (c *Client) Stream(ctx context.Context, sp *switchsynth.Spec, opts service.RequestOptions, onFrame func(*service.SynthesizeResponse) error) (*service.SynthesizeResponse, error) {
	key, err := switchsynth.CanonicalKey(sp)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(service.SynthesizeRequest{Spec: sp, Options: opts})
	if err != nil {
		return nil, err
	}
	targets := c.targets(sp, opts)

	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 && !(transportFailure(lastErr) && len(targets) > 1) {
			if err := c.sleep(ctx, attempt, lastErr); err != nil {
				return nil, err
			}
		}
		out, started, err := c.streamOnce(ctx, targets[attempt%len(targets)], key, body, onFrame)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if started || ctx.Err() != nil {
			// The 200 was committed: frames may already have been
			// delivered, so the attempt is not idempotently retryable.
			return nil, err
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && !apiErr.Temporary() {
			return nil, err
		}
	}
	return nil, lastErr
}

// streamOnce performs one ?wait=proof round trip; started reports
// whether the response stream was entered (no retries past that point).
func (c *Client) streamOnce(ctx context.Context, base, key string, body []byte, onFrame func(*service.SynthesizeResponse) error) (_ *service.SynthesizeResponse, started bool, _ error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/synthesize?wait=proof", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	c.setIdentity(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, readAPIError(resp)
	}
	// Each ndjson line is either a SynthesizeResponse frame or, after a
	// mid-stream failure, the daemon's {"error","kind"} envelope.
	type streamLine struct {
		service.SynthesizeResponse
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var line streamLine
		if err := dec.Decode(&line); err != nil {
			if errors.Is(err, io.EOF) {
				return nil, true, fmt.Errorf("client: stream ended without a final frame")
			}
			return nil, true, fmt.Errorf("client: reading stream: %w", err)
		}
		if line.Error != "" {
			return nil, true, &APIError{Status: statusForKind(line.Kind), Kind: line.Kind, Message: line.Error}
		}
		if line.Final {
			return &line.SynthesizeResponse, true, nil
		}
		if onFrame != nil {
			if err := onFrame(&line.SynthesizeResponse); err != nil {
				return nil, true, err
			}
		}
	}
}

// statusForKind maps an in-band stream error kind back onto the status
// the same error would have carried before the stream committed its 200.
func statusForKind(kind string) int {
	switch kind {
	case "invalid":
		return http.StatusBadRequest
	case "not-found":
		return http.StatusNotFound
	case "no-solution":
		return http.StatusUnprocessableEntity
	case "overloaded":
		return http.StatusTooManyRequests
	case "unavailable":
		return http.StatusServiceUnavailable
	case "timeout":
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// Metrics fetches the daemon's /metrics snapshot (no retries).
func (c *Client) Metrics(ctx context.Context) (*service.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readAPIError(resp)
	}
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("client: decoding metrics: %w", err)
	}
	return &snap, nil
}

// PortfolioStats fetches the daemon's /portfolio counters — racing lane
// wins, backend disagreements (zero in a healthy deployment), warm-start
// hit rate and similarity-index gauges (no retries).
func (c *Client) PortfolioStats(ctx context.Context) (*service.PortfolioStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/portfolio", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readAPIError(resp)
	}
	var ps service.PortfolioStats
	if err := json.NewDecoder(resp.Body).Decode(&ps); err != nil {
		return nil, fmt.Errorf("client: decoding portfolio stats: %w", err)
	}
	return &ps, nil
}

// Healthz probes the daemon's liveness endpoint (no retries).
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readAPIError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// readAPIError decodes the daemon's JSON error envelope and Retry-After
// header into an *APIError.
func readAPIError(resp *http.Response) error {
	apiErr := &APIError{Status: resp.StatusCode, Kind: "internal"}
	var envelope struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(data, &envelope); err == nil && envelope.Kind != "" {
		apiErr.Kind = envelope.Kind
		apiErr.Message = envelope.Error
	} else {
		apiErr.Message = strings.TrimSpace(string(data))
	}
	if apiErr.Message == "" {
		apiErr.Message = http.StatusText(resp.StatusCode)
	}
	// Retry-After comes in two RFC 9110 forms: delay-seconds and
	// HTTP-date. Proxies in front of the daemon may rewrite one into the
	// other, so honor both.
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		} else if at, err := http.ParseTime(ra); err == nil {
			if d := time.Until(at); d > 0 {
				apiErr.RetryAfter = d
			}
		}
	}
	return apiErr
}
