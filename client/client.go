// Package client is the Go client for a synthd daemon
// (cmd/synthd): it submits synthesis requests over HTTP with
// context-aware retries, exponential backoff with full jitter, and
// idempotency keyed on the spec's canonical key.
//
// Retry policy: network errors and the shed-load statuses (429, 502,
// 503, 504) are retried up to Config.MaxAttempts times; a Retry-After
// header from the daemon's circuit breaker or drain window overrides
// the computed backoff. All other statuses — including 422 no-solution,
// which is an infeasibility proof — fail immediately. Requests carry an
// Idempotency-Key header equal to spec.CanonicalKey, so retries of the
// same spec land on the daemon's result cache (or coalesce onto an
// in-flight solve) instead of repeating work.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"switchsynth"
	"switchsynth/internal/service"
)

// Config configures a Client.
type Config struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport (default: a plain http.Client;
	// deadlines come from the caller's context).
	HTTPClient *http.Client
	// MaxAttempts bounds the total tries per request, first attempt
	// included (default 4; negative disables retries entirely).
	MaxAttempts int
	// BaseBackoff is the first retry's backoff cap (default 100ms); the
	// cap doubles per attempt up to MaxBackoff (default 2s). The actual
	// sleep is uniform in [0, cap): full jitter, so synchronized clients
	// spread out instead of retrying in lockstep.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed makes the jitter deterministic for tests; 0 seeds from the
	// clock.
	Seed int64
}

// Client is a synthd HTTP client; safe for concurrent use.
type Client struct {
	base        string
	hc          *http.Client
	maxAttempts int
	baseBackoff time.Duration
	maxBackoff  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// APIError is a non-2xx daemon response, carrying the service error
// taxonomy (kind "invalid", "no-solution", "timeout", "overloaded",
// "unavailable", "panic", "internal") and any Retry-After hint.
type APIError struct {
	Status     int
	Kind       string
	Message    string
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("synthd: %s (%d %s)", e.Message, e.Status, e.Kind)
}

// Temporary reports whether retrying the same request can succeed.
func (e *APIError) Temporary() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// New creates a client for the daemon at cfg.BaseURL.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: BaseURL is required")
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	attempts := cfg.MaxAttempts
	switch {
	case attempts < 0:
		attempts = 1
	case attempts == 0:
		attempts = 4
	}
	base := cfg.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := cfg.MaxBackoff
	if max <= 0 {
		max = 2 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{
		base:        strings.TrimRight(cfg.BaseURL, "/"),
		hc:          hc,
		maxAttempts: attempts,
		baseBackoff: base,
		maxBackoff:  max,
		rng:         rand.New(rand.NewSource(seed)),
	}, nil
}

// Synthesize submits sp and returns the daemon's response, retrying
// transient failures until ctx is done or MaxAttempts is exhausted.
func (c *Client) Synthesize(ctx context.Context, sp *switchsynth.Spec, opts service.RequestOptions) (*service.SynthesizeResponse, error) {
	// The canonical key both validates the spec locally (no round trip
	// for garbage) and keys idempotent retries.
	key, err := switchsynth.CanonicalKey(sp)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(service.SynthesizeRequest{Spec: sp, Options: opts})
	if err != nil {
		return nil, err
	}

	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, attempt, lastErr); err != nil {
				return nil, err
			}
		}
		out, err := c.once(ctx, key, body)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, err
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && !apiErr.Temporary() {
			return nil, err
		}
		// Network errors and temporary statuses fall through to retry.
	}
	return nil, lastErr
}

// once performs a single POST /synthesize round trip.
func (c *Client) once(ctx context.Context, key string, body []byte) (*service.SynthesizeResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/synthesize", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readAPIError(resp)
	}
	var out service.SynthesizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	return &out, nil
}

// sleep waits the retry backoff before attempt: the server's Retry-After
// hint when present, otherwise full jitter under an exponentially
// doubling cap. Returns early with ctx.Err() on cancellation.
func (c *Client) sleep(ctx context.Context, attempt int, lastErr error) error {
	var wait time.Duration
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > 0 {
		wait = apiErr.RetryAfter
	} else {
		cap := c.baseBackoff << (attempt - 1)
		if cap > c.maxBackoff {
			cap = c.maxBackoff
		}
		c.mu.Lock()
		wait = time.Duration(c.rng.Float64() * float64(cap))
		c.mu.Unlock()
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Metrics fetches the daemon's /metrics snapshot (no retries).
func (c *Client) Metrics(ctx context.Context) (*service.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readAPIError(resp)
	}
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("client: decoding metrics: %w", err)
	}
	return &snap, nil
}

// Healthz probes the daemon's liveness endpoint (no retries).
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readAPIError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// readAPIError decodes the daemon's JSON error envelope and Retry-After
// header into an *APIError.
func readAPIError(resp *http.Response) error {
	apiErr := &APIError{Status: resp.StatusCode, Kind: "internal"}
	var envelope struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(data, &envelope); err == nil && envelope.Kind != "" {
		apiErr.Kind = envelope.Kind
		apiErr.Message = envelope.Error
	} else {
		apiErr.Message = strings.TrimSpace(string(data))
	}
	if apiErr.Message == "" {
		apiErr.Message = http.StatusText(resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}
