// Client-side coverage of the admission tier: batch submission with
// per-item partial failure, the ?wait=proof stream, and the tenant /
// priority identity headers.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/service"
	"switchsynth/internal/spec"
)

// streamSpec16 is a 16-pin case hard enough that the solver publishes a
// degraded incumbent before the optimality proof (mirrors the service
// layer's streaming fixture).
func streamSpec16(name string) *switchsynth.Spec {
	return &switchsynth.Spec{
		Name:       name,
		SwitchPins: 16,
		Modules:    []string{"a", "b", "c", "o1", "o2", "o3", "o4"},
		Flows: []spec.Flow{
			{From: "a", To: "o1"}, {From: "b", To: "o2"},
			{From: "c", To: "o3"}, {From: "a", To: "o4"},
		},
		Binding: spec.Unfixed,
	}
}

// TestBatchMixedOutcomesAgainstRealDaemon submits one batch holding a
// solvable spec, a duplicate of it, a deadline-starved 16-pin spec and a
// malformed spec: the client must return the proven plan, the deduped
// copy, the degraded anytime plan and a per-item *APIError — all from
// one call, with no member failing its neighbours.
func TestBatchMixedOutcomesAgainstRealDaemon(t *testing.T) {
	eng := service.New(service.Config{Workers: 2})
	defer eng.Close()
	srv := httptest.NewServer(service.NewHandler(eng))
	defer srv.Close()
	c := newTestClient(t, srv.URL, Config{})

	bad := clientSpec("bad")
	bad.Flows = append(bad.Flows, spec.Flow{From: "sample", To: "nowhere"})
	envelope, items, err := c.Batch(context.Background(), []service.BatchRequestItem{
		{Spec: clientSpec("good")},
		{Spec: clientSpec("good-dup")},
		{Spec: streamSpec16("starved"), Options: &service.RequestOptions{TimeLimitMS: 50}},
		{Spec: bad},
	}, service.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if envelope.Specs != 4 || envelope.Failed != 1 {
		t.Errorf("envelope specs=%d failed=%d, want 4 specs with 1 failure", envelope.Specs, envelope.Failed)
	}

	if items[0].Err != nil || !items[0].Response.Proven {
		t.Errorf("item 0 = err %v proven %v, want a proven plan", items[0].Err, items[0].Response != nil && items[0].Response.Proven)
	}
	if items[1].Err != nil || !items[1].Dedup {
		t.Errorf("item 1 = err %v dedup %v, want deduped onto item 0's solve", items[1].Err, items[1].Dedup)
	}
	if items[0].Key != items[1].Key {
		t.Error("isomorphic members landed on different canonical keys")
	}
	if items[2].Err != nil {
		t.Fatalf("starved member failed: %v", items[2].Err)
	}
	if !items[2].Response.Degraded || items[2].Response.Proven || items[2].Response.Gap <= 0 {
		t.Errorf("starved member = degraded %v proven %v gap %v, want a degraded anytime plan",
			items[2].Response.Degraded, items[2].Response.Proven, items[2].Response.Gap)
	}
	var apiErr *APIError
	if !errors.As(items[3].Err, &apiErr) {
		t.Fatalf("malformed member error = %T (%v), want *APIError", items[3].Err, items[3].Err)
	}
	if apiErr.Status != http.StatusBadRequest || apiErr.Kind != "invalid" || apiErr.Temporary() {
		t.Errorf("malformed member = %+v, want permanent 400 invalid", apiErr)
	}
}

// TestBatchSurfacesShedMembers: a daemon under load sheds individual
// batch members with the overloaded kind; the client must surface them
// as retryable per-item *APIErrors while the served members still carry
// their plans.
func TestBatchSurfacesShedMembers(t *testing.T) {
	var envelopeCalls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if envelopeCalls.Add(1) == 1 {
			// First attempt: the whole envelope bounces off a drain; the
			// client must retry the POST (no Retry-After here, so the
			// millisecond test backoff applies).
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "draining", "kind": "unavailable"})
			return
		}
		json.NewEncoder(w).Encode(service.BatchResponse{
			Specs: 2, DistinctKeys: 2, Solves: 1, Failed: 1,
			Items: []service.BatchItemResponse{
				{Index: 0, Key: "k0", Response: &service.SynthesizeResponse{Name: "ok", Proven: true}},
				{Index: 1, Key: "k1", Error: "queue over watermark", Kind: "overloaded", Status: http.StatusTooManyRequests},
			},
		})
	}))
	defer srv.Close()
	c := newTestClient(t, srv.URL, Config{BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond})

	_, items, err := c.Batch(context.Background(), []service.BatchRequestItem{
		{Spec: clientSpec("ok")}, {Spec: clientSpec("shed")},
	}, service.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if envelopeCalls.Load() != 2 {
		t.Errorf("envelope attempts = %d, want a retry after the 503", envelopeCalls.Load())
	}
	if items[0].Err != nil || items[0].Response == nil || !items[0].Response.Proven {
		t.Errorf("served member = %+v, want its plan intact next to the shed one", items[0])
	}
	var apiErr *APIError
	if !errors.As(items[1].Err, &apiErr) {
		t.Fatalf("shed member error = %T, want *APIError", items[1].Err)
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.Kind != "overloaded" || !apiErr.Temporary() {
		t.Errorf("shed member = %+v, want retryable 429 overloaded", apiErr)
	}
}

// TestStreamFramesThenProvenFinal follows ?wait=proof end to end against
// the real daemon: at least one degraded incumbent frame arrives before
// the proven final, and the final plan is byte-identical to a plain
// Synthesize of the same spec.
func TestStreamFramesThenProvenFinal(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second 16-pin solve")
	}
	eng := service.New(service.Config{Workers: 1})
	defer eng.Close()
	srv := httptest.NewServer(service.NewHandler(eng))
	defer srv.Close()
	c := newTestClient(t, srv.URL, Config{})

	sp := streamSpec16("client-stream")
	var frames []*service.SynthesizeResponse
	final, err := c.Stream(context.Background(), sp,
		service.RequestOptions{TimeLimitMS: (2 * time.Minute).Milliseconds()},
		func(f *service.SynthesizeResponse) error {
			frames = append(frames, f)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !final.Proven || !final.Final {
		t.Fatalf("final frame = proven %v final %v, want the proven plan", final.Proven, final.Final)
	}
	if len(frames) == 0 {
		t.Fatal("no incumbent frames before the proof")
	}
	for i, f := range frames {
		if !f.Degraded || f.Gap <= 0 || f.Final {
			t.Errorf("frame %d = degraded %v gap %v final %v, want a degraded incumbent", i, f.Degraded, f.Gap, f.Final)
		}
		if f.Seq != int64(i+1) {
			t.Errorf("frame %d: seq %d, want %d", i, f.Seq, i+1)
		}
	}

	cold, err := c.Synthesize(context.Background(), sp, service.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final.Plan, cold.Plan) {
		t.Error("streamed final plan differs from a plain POST /synthesize")
	}
}

// TestStreamInBandError: an error after the 200 is committed arrives as
// the trailing ndjson line; the client must map it back onto the same
// *APIError taxonomy a pre-stream failure would have carried.
func TestStreamInBandError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		enc.Encode(service.SynthesizeResponse{Name: "frame", Seq: 1, Degraded: true, Gap: 0.5})
		enc.Encode(map[string]string{"error": "solver timed out", "kind": "timeout"})
	}))
	defer srv.Close()
	c := newTestClient(t, srv.URL, Config{})

	var frames int
	_, err := c.Stream(context.Background(), clientSpec("inband"), service.RequestOptions{},
		func(*service.SynthesizeResponse) error { frames++; return nil })
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("in-band error surfaced as %T (%v), want *APIError", err, err)
	}
	if apiErr.Kind != "timeout" || apiErr.Status != http.StatusGatewayTimeout {
		t.Errorf("in-band error = %+v, want kind timeout / 504", apiErr)
	}
	if frames != 1 {
		t.Errorf("frames before the error = %d, want 1", frames)
	}
}

// TestIdentityHeadersAttached: a client configured with a tenant and
// priority stamps both headers on every synthesize-family request; an
// unconfigured client sends neither, deferring to the daemon defaults.
func TestIdentityHeadersAttached(t *testing.T) {
	type seen struct{ tenant, priority string }
	var last atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		last.Store(seen{r.Header.Get(service.TenantHeader), r.Header.Get(service.PriorityHeader)})
		json.NewEncoder(w).Encode(service.SynthesizeResponse{Name: "ok"})
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, Config{Tenant: "acme", Priority: "background"})
	if _, err := c.Synthesize(context.Background(), clientSpec("hdr"), service.RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := last.Load().(seen); got != (seen{"acme", "background"}) {
		t.Errorf("Synthesize sent identity %+v, want acme/background", got)
	}
	if _, _, err := c.Batch(context.Background(), []service.BatchRequestItem{{Spec: clientSpec("hdr")}}, service.RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := last.Load().(seen); got != (seen{"acme", "background"}) {
		t.Errorf("Batch sent identity %+v, want acme/background", got)
	}

	plain := newTestClient(t, srv.URL, Config{})
	if _, err := plain.Synthesize(context.Background(), clientSpec("hdr2"), service.RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := last.Load().(seen); got != (seen{"", ""}) {
		t.Errorf("unconfigured client sent identity %+v, want none", got)
	}
}
