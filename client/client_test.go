package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/cluster"
	"switchsynth/internal/service"
	"switchsynth/internal/spec"
)

func clientSpec(name string) *switchsynth.Spec {
	return &switchsynth.Spec{
		Name:       name,
		SwitchPins: 8,
		Modules:    []string{"sample", "buffer", "mix1", "mix2"},
		Flows: []spec.Flow{
			{From: "sample", To: "mix1"},
			{From: "buffer", To: "mix2"},
		},
		Conflicts: [][2]int{{0, 1}},
		Binding:   spec.Unfixed,
	}
}

func newTestClient(t *testing.T, url string, cfg Config) *Client {
	t.Helper()
	cfg.BaseURL = url
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = time.Millisecond
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSynthesizeAgainstRealDaemonHandler round-trips a spec through the
// actual service handler: the client must surface the plan metadata and
// the daemon must see the idempotency key.
func TestSynthesizeAgainstRealDaemonHandler(t *testing.T) {
	eng := service.New(service.Config{Workers: 2})
	defer eng.Close()
	srv := httptest.NewServer(service.NewHandler(eng))
	defer srv.Close()
	c := newTestClient(t, srv.URL, Config{})

	sp := clientSpec("client-roundtrip")
	resp, err := c.Synthesize(context.Background(), sp, service.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.NumSets <= 0 {
		t.Errorf("degenerate plan: sets=%d", resp.NumSets)
	}
	wantKey, err := switchsynth.CanonicalKey(sp)
	if err != nil {
		t.Fatal(err)
	}
	// The daemon's job key is the spec's canonical key plus an engine
	// discriminator.
	if !strings.HasPrefix(resp.Key, wantKey) {
		t.Errorf("response key = %q, want canonical-key prefix %q", resp.Key, wantKey)
	}

	if err := c.Healthz(context.Background()); err != nil {
		t.Errorf("Healthz: %v", err)
	}
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.JobsSubmitted == 0 {
		t.Error("metrics snapshot shows no submitted jobs after a synthesis")
	}
}

// TestRetriesTransientStatusesThenSucceeds fails twice with retryable
// statuses before serving; the client must retry through both and attach
// the idempotency key on every attempt.
func TestRetriesTransientStatusesThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	var keys atomic.Int64
	sp := clientSpec("client-retry")
	wantKey, err := switchsynth.CanonicalKey(sp)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Idempotency-Key") == wantKey {
			keys.Add(1)
		}
		switch calls.Add(1) {
		case 1:
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "draining", "kind": "unavailable"})
		case 2:
			w.WriteHeader(http.StatusGatewayTimeout)
			json.NewEncoder(w).Encode(map[string]string{"error": "slow", "kind": "timeout"})
		default:
			json.NewEncoder(w).Encode(service.SynthesizeResponse{Name: sp.Name, NumSets: 1})
		}
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, Config{MaxAttempts: 4})
	resp, err := c.Synthesize(context.Background(), sp, service.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Name != sp.Name {
		t.Errorf("resp.Name = %q, want %q", resp.Name, sp.Name)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
	if got := keys.Load(); got != 3 {
		t.Errorf("idempotency key present on %d/3 attempts", got)
	}
}

// TestHonorsRetryAfter asserts the 429 Retry-After header overrides the
// jitter backoff: with a 1s hint the second attempt cannot land sooner.
func TestHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var firstAt, secondAt time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			firstAt = time.Now()
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "breaker open", "kind": "overloaded"})
			return
		}
		secondAt = time.Now()
		json.NewEncoder(w).Encode(service.SynthesizeResponse{Name: "ra", NumSets: 1})
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, Config{MaxAttempts: 2})
	if _, err := c.Synthesize(context.Background(), clientSpec("client-ra"), service.RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	if gap := secondAt.Sub(firstAt); gap < 900*time.Millisecond {
		t.Errorf("retried after %v, want >= ~1s from Retry-After header", gap)
	}
}

// TestPermanentErrorsFailFast: a 422 infeasibility proof must not be
// retried — re-solving an infeasible spec cannot help.
func TestPermanentErrorsFailFast(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(map[string]string{"error": "no feasible plan", "kind": "no-solution"})
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, Config{MaxAttempts: 5})
	_, err := c.Synthesize(context.Background(), clientSpec("client-nosol"), service.RequestOptions{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Kind != "no-solution" || apiErr.Status != http.StatusUnprocessableEntity {
		t.Errorf("got %d/%s, want 422/no-solution", apiErr.Status, apiErr.Kind)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (no retry on permanent error)", got)
	}
}

// TestRetriesExhaustedReturnsLastError keeps serving 503 and expects the
// final typed error after MaxAttempts tries.
func TestRetriesExhaustedReturnsLastError(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "draining", "kind": "unavailable"})
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, Config{MaxAttempts: 3})
	_, err := c.Synthesize(context.Background(), clientSpec("client-exhaust"), service.RequestOptions{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 *APIError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want MaxAttempts=3", got)
	}
}

// TestContextCancelStopsRetryLoop cancels mid-backoff; the client must
// return promptly with the context error instead of sleeping it out.
func TestContextCancelStopsRetryLoop(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]string{"error": "breaker open", "kind": "overloaded"})
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := newTestClient(t, srv.URL, Config{MaxAttempts: 5})
	start := time.Now()
	_, err := c.Synthesize(ctx, clientSpec("client-cancel"), service.RequestOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; the 30s Retry-After was not interrupted", elapsed)
	}
}

// TestInvalidSpecFailsLocally: canonicalization rejects garbage before
// any network round trip.
func TestInvalidSpecFailsLocally(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, Config{})
	sp := clientSpec("client-invalid")
	sp.Flows = append(sp.Flows, spec.Flow{From: "ghost", To: "mix1"})
	if _, err := c.Synthesize(context.Background(), sp, service.RequestOptions{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if calls.Load() != 0 {
		t.Errorf("invalid spec reached the server (%d calls)", calls.Load())
	}
}

// TestHonorsRetryAfterOn503 asserts a 503 drain hint delays the retry
// exactly like a 429 breaker hint: the shed-load statuses share one
// backoff policy.
func TestHonorsRetryAfterOn503(t *testing.T) {
	var calls atomic.Int64
	var firstAt, secondAt time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			firstAt = time.Now()
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "draining", "kind": "unavailable"})
			return
		}
		secondAt = time.Now()
		json.NewEncoder(w).Encode(service.SynthesizeResponse{Name: "ra503", NumSets: 1})
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, Config{MaxAttempts: 2})
	if _, err := c.Synthesize(context.Background(), clientSpec("client-ra503"), service.RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	if gap := secondAt.Sub(firstAt); gap < 900*time.Millisecond {
		t.Errorf("retried after %v, want >= ~1s from the 503 Retry-After header", gap)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls, want 2", got)
	}
}

// TestRetryAfterHTTPDateForm: proxies may rewrite delay-seconds into an
// HTTP-date; the client must parse both RFC 9110 forms.
func TestRetryAfterHTTPDateForm(t *testing.T) {
	var calls atomic.Int64
	var firstAt, secondAt time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			firstAt = time.Now()
			w.Header().Set("Retry-After", time.Now().Add(1200*time.Millisecond).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "draining", "kind": "unavailable"})
			return
		}
		secondAt = time.Now()
		json.NewEncoder(w).Encode(service.SynthesizeResponse{Name: "radate", NumSets: 1})
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, Config{MaxAttempts: 2})
	if _, err := c.Synthesize(context.Background(), clientSpec("client-radate"), service.RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	// HTTP-date has 1s resolution, so the observable floor is well under
	// the nominal 1.2s — but a client that ignored the header entirely
	// would retry within the 1ms test backoff.
	if gap := secondAt.Sub(firstAt); gap < 150*time.Millisecond {
		t.Errorf("retried after %v; HTTP-date Retry-After ignored", gap)
	}
}

// TestFailoverSkipsBackoffOnTransportError: backoff paces a node that
// is up but overloaded; a node that cannot be reached at all is not
// overloaded. With more than one target, a transport failure must walk
// to the next-ranked node immediately instead of sleeping out a
// backoff the dead node will never benefit from.
func TestFailoverSkipsBackoffOnTransportError(t *testing.T) {
	sp := clientSpec("client-fast-failover")
	jobKey, err := service.JobKey(sp, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var survivorHits atomic.Int64
	survivor := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		survivorHits.Add(1)
		json.NewEncoder(w).Encode(service.SynthesizeResponse{Name: sp.Name, NumSets: 1})
	}))
	defer survivor.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()

	deadID, survivorID := "n0", "n1"
	if cluster.NewRing([]cluster.Node{{ID: "n0"}, {ID: "n1"}}).OwnerID(jobKey) == "n1" {
		deadID, survivorID = "n1", "n0"
	}
	peers := fmt.Sprintf("%s=%s,%s=%s", deadID, dead.URL, survivorID, survivor.URL)

	// A backoff long enough that sleeping even once would blow the
	// elapsed budget below.
	c, err := New(Config{Peers: peers, Seed: 1, BaseBackoff: time.Minute, MaxBackoff: time.Minute, MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := c.Synthesize(context.Background(), sp, service.RequestOptions{})
	if err != nil {
		t.Fatalf("failover request failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("failover took %v; the transport error must skip the backoff sleep", elapsed)
	}
	if resp.Name != sp.Name || survivorHits.Load() != 1 {
		t.Errorf("resp=%q survivorHits=%d, want the immediate retry served by the survivor",
			resp.Name, survivorHits.Load())
	}
}

// TestOwnerFirstRouting: with Config.Peers the first attempt must land
// on the spec's owning node (per the shared rendezvous ring), not on
// whichever URL is listed first.
func TestOwnerFirstRouting(t *testing.T) {
	sp := clientSpec("client-owner")
	jobKey, err := service.JobKey(sp, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var hits [2]atomic.Int64
	servers := make([]*httptest.Server, 2)
	peers := make([]string, 2)
	for i := range servers {
		i := i
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			json.NewEncoder(w).Encode(service.SynthesizeResponse{Name: sp.Name, NumSets: 1})
		}))
		defer servers[i].Close()
		peers[i] = fmt.Sprintf("n%d=%s", i, servers[i].URL)
	}
	ring := cluster.NewRing([]cluster.Node{{ID: "n0", URL: servers[0].URL}, {ID: "n1", URL: servers[1].URL}})
	owner := 0
	if ring.OwnerID(jobKey) == "n1" {
		owner = 1
	}

	c, err := New(Config{Peers: strings.Join(peers, ","), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Synthesize(context.Background(), sp, service.RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	if hits[owner].Load() != 1 || hits[1-owner].Load() != 0 {
		t.Errorf("hits = [%d %d], want the single request on owner n%d",
			hits[0].Load(), hits[1].Load(), owner)
	}
}

// TestOwnerRoutingFailsOverOnRetry: a dead owner costs one attempt; the
// retry walks to the next-ranked node instead of hammering the corpse.
func TestOwnerRoutingFailsOverOnRetry(t *testing.T) {
	sp := clientSpec("client-failover")
	jobKey, err := service.JobKey(sp, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var survivorHits atomic.Int64
	survivor := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		survivorHits.Add(1)
		json.NewEncoder(w).Encode(service.SynthesizeResponse{Name: sp.Name, NumSets: 1})
	}))
	defer survivor.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from now on

	// Name the dead node so it owns the key: the first attempt must fail.
	deadID, survivorID := "n0", "n1"
	if cluster.NewRing([]cluster.Node{{ID: "n0"}, {ID: "n1"}}).OwnerID(jobKey) == "n1" {
		deadID, survivorID = "n1", "n0"
	}
	peers := fmt.Sprintf("%s=%s,%s=%s", deadID, dead.URL, survivorID, survivor.URL)

	c, err := New(Config{Peers: peers, Seed: 1, BaseBackoff: time.Millisecond, MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Synthesize(context.Background(), sp, service.RequestOptions{})
	if err != nil {
		t.Fatalf("failover request failed: %v", err)
	}
	if resp.Name != sp.Name || survivorHits.Load() != 1 {
		t.Errorf("resp=%q survivorHits=%d, want the retry served by the survivor",
			resp.Name, survivorHits.Load())
	}
}
