package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/service"
	"switchsynth/internal/spec"
)

func clientSpec(name string) *switchsynth.Spec {
	return &switchsynth.Spec{
		Name:       name,
		SwitchPins: 8,
		Modules:    []string{"sample", "buffer", "mix1", "mix2"},
		Flows: []spec.Flow{
			{From: "sample", To: "mix1"},
			{From: "buffer", To: "mix2"},
		},
		Conflicts: [][2]int{{0, 1}},
		Binding:   spec.Unfixed,
	}
}

func newTestClient(t *testing.T, url string, cfg Config) *Client {
	t.Helper()
	cfg.BaseURL = url
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = time.Millisecond
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSynthesizeAgainstRealDaemonHandler round-trips a spec through the
// actual service handler: the client must surface the plan metadata and
// the daemon must see the idempotency key.
func TestSynthesizeAgainstRealDaemonHandler(t *testing.T) {
	eng := service.New(service.Config{Workers: 2})
	defer eng.Close()
	srv := httptest.NewServer(service.NewHandler(eng))
	defer srv.Close()
	c := newTestClient(t, srv.URL, Config{})

	sp := clientSpec("client-roundtrip")
	resp, err := c.Synthesize(context.Background(), sp, service.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.NumSets <= 0 {
		t.Errorf("degenerate plan: sets=%d", resp.NumSets)
	}
	wantKey, err := switchsynth.CanonicalKey(sp)
	if err != nil {
		t.Fatal(err)
	}
	// The daemon's job key is the spec's canonical key plus an engine
	// discriminator.
	if !strings.HasPrefix(resp.Key, wantKey) {
		t.Errorf("response key = %q, want canonical-key prefix %q", resp.Key, wantKey)
	}

	if err := c.Healthz(context.Background()); err != nil {
		t.Errorf("Healthz: %v", err)
	}
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.JobsSubmitted == 0 {
		t.Error("metrics snapshot shows no submitted jobs after a synthesis")
	}
}

// TestRetriesTransientStatusesThenSucceeds fails twice with retryable
// statuses before serving; the client must retry through both and attach
// the idempotency key on every attempt.
func TestRetriesTransientStatusesThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	var keys atomic.Int64
	sp := clientSpec("client-retry")
	wantKey, err := switchsynth.CanonicalKey(sp)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Idempotency-Key") == wantKey {
			keys.Add(1)
		}
		switch calls.Add(1) {
		case 1:
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "draining", "kind": "unavailable"})
		case 2:
			w.WriteHeader(http.StatusGatewayTimeout)
			json.NewEncoder(w).Encode(map[string]string{"error": "slow", "kind": "timeout"})
		default:
			json.NewEncoder(w).Encode(service.SynthesizeResponse{Name: sp.Name, NumSets: 1})
		}
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, Config{MaxAttempts: 4})
	resp, err := c.Synthesize(context.Background(), sp, service.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Name != sp.Name {
		t.Errorf("resp.Name = %q, want %q", resp.Name, sp.Name)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
	if got := keys.Load(); got != 3 {
		t.Errorf("idempotency key present on %d/3 attempts", got)
	}
}

// TestHonorsRetryAfter asserts the 429 Retry-After header overrides the
// jitter backoff: with a 1s hint the second attempt cannot land sooner.
func TestHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var firstAt, secondAt time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			firstAt = time.Now()
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "breaker open", "kind": "overloaded"})
			return
		}
		secondAt = time.Now()
		json.NewEncoder(w).Encode(service.SynthesizeResponse{Name: "ra", NumSets: 1})
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, Config{MaxAttempts: 2})
	if _, err := c.Synthesize(context.Background(), clientSpec("client-ra"), service.RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	if gap := secondAt.Sub(firstAt); gap < 900*time.Millisecond {
		t.Errorf("retried after %v, want >= ~1s from Retry-After header", gap)
	}
}

// TestPermanentErrorsFailFast: a 422 infeasibility proof must not be
// retried — re-solving an infeasible spec cannot help.
func TestPermanentErrorsFailFast(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(map[string]string{"error": "no feasible plan", "kind": "no-solution"})
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, Config{MaxAttempts: 5})
	_, err := c.Synthesize(context.Background(), clientSpec("client-nosol"), service.RequestOptions{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Kind != "no-solution" || apiErr.Status != http.StatusUnprocessableEntity {
		t.Errorf("got %d/%s, want 422/no-solution", apiErr.Status, apiErr.Kind)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (no retry on permanent error)", got)
	}
}

// TestRetriesExhaustedReturnsLastError keeps serving 503 and expects the
// final typed error after MaxAttempts tries.
func TestRetriesExhaustedReturnsLastError(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "draining", "kind": "unavailable"})
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, Config{MaxAttempts: 3})
	_, err := c.Synthesize(context.Background(), clientSpec("client-exhaust"), service.RequestOptions{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 *APIError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want MaxAttempts=3", got)
	}
}

// TestContextCancelStopsRetryLoop cancels mid-backoff; the client must
// return promptly with the context error instead of sleeping it out.
func TestContextCancelStopsRetryLoop(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]string{"error": "breaker open", "kind": "overloaded"})
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := newTestClient(t, srv.URL, Config{MaxAttempts: 5})
	start := time.Now()
	_, err := c.Synthesize(ctx, clientSpec("client-cancel"), service.RequestOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; the 30s Retry-After was not interrupted", elapsed)
	}
}

// TestInvalidSpecFailsLocally: canonicalization rejects garbage before
// any network round trip.
func TestInvalidSpecFailsLocally(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, Config{})
	sp := clientSpec("client-invalid")
	sp.Flows = append(sp.Flows, spec.Flow{From: "ghost", To: "mix1"})
	if _, err := c.Synthesize(context.Background(), sp, service.RequestOptions{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if calls.Load() != 0 {
		t.Errorf("invalid spec reached the server (%d calls)", calls.Load())
	}
}
