// Package switchsynth synthesizes contamination-free microfluidic switches
// for continuous-flow microfluidic large-scale integration (mLSI) biochips.
//
// It reproduces the system of "Contamination-Free Switch Design and
// Synthesis for Microfluidic Large-Scale Integration" (Shen, TU München /
// DATE 2022 line of work): reconfigurable 8-, 12- and 16-pin crossbar-like
// switch models are reduced to application-specific switches by an exact
// optimizer that simultaneously
//
//   - assigns every fluid flow to a shortest routing path,
//   - keeps conflicting fluids node- and segment-disjoint at all times,
//   - schedules flows into a minimum number of parallel-executable flow
//     sets (within a set, each junction carries fluid of one inlet only),
//   - binds the connected modules to switch pins under a fixed, clockwise
//     or unfixed policy, and
//   - minimizes α·N_Sets + β·L_flow (flow-set count and channel length).
//
// After routing, the valve analysis derives per-set open/closed/don't-care
// status sequences, removes unnecessary valves (the "carry" rule), and the
// optional pressure-sharing step groups compatible valves onto shared
// control inlets via minimum clique cover.
//
// # Quick start
//
//	sp := &switchsynth.Spec{
//		Name:       "demo",
//		SwitchPins: 8,
//		Modules:    []string{"sample", "buffer", "mix1", "mix2"},
//		Flows: []switchsynth.Flow{
//			{From: "sample", To: "mix1"},
//			{From: "buffer", To: "mix2"},
//		},
//		Conflicts: [][2]int{{0, 1}},
//		Binding:   switchsynth.Unfixed,
//	}
//	syn, err := switchsynth.Synthesize(sp, switchsynth.Options{PressureSharing: true})
//	if err != nil { ... }
//	fmt.Println(syn.Summary())
//	os.WriteFile("switch.svg", []byte(syn.SVG()), 0o644)
//
// The two engines — the scalable branch-and-bound search (default) and the
// paper-faithful IQP-as-MILP encoding — optimize the same model; see
// DESIGN.md for the substitution notes.
package switchsynth

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"switchsynth/internal/clique"
	"switchsynth/internal/contam"
	"switchsynth/internal/ctrl"
	"switchsynth/internal/model"
	"switchsynth/internal/render"
	"switchsynth/internal/search"
	"switchsynth/internal/sim"
	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
	"switchsynth/internal/valve"
	"switchsynth/internal/wash"
)

// Re-exported input types. See the spec package for field documentation.
type (
	// Spec is the synthesis input: switch size, modules, flows, conflicts
	// and binding policy.
	Spec = spec.Spec
	// Flow is one fluid transport between two modules.
	Flow = spec.Flow
	// BindingPolicy selects how modules are bound to switch pins.
	BindingPolicy = spec.BindingPolicy
	// Result is the routed, scheduled and bound switch plan.
	Result = spec.Result
	// Route is one flow's scheduled path.
	Route = spec.Route
	// ErrNoSolution reports proven infeasibility under the chosen policy.
	ErrNoSolution = spec.ErrNoSolution
	// ErrTimeout reports that the time limit (or context) expired before
	// any feasible plan was found. Synthesize returns it for every
	// engine, so callers classify timeouts with
	// errors.Is(err, &switchsynth.ErrTimeout{}) or errors.As — never by
	// matching error strings. It unwraps to context.DeadlineExceeded (or
	// the cancelled context's error).
	ErrTimeout = search.ErrTimeout
)

// CanonicalKey returns a stable content hash identifying sp's
// equivalence class under the spec's presentation symmetries: module
// order (sorted for fixed/unfixed binding, minimal rotation for the
// cyclic clockwise order), flow order, and conflict-pair order and
// orientation. Specs with equal keys describe the same synthesis
// problem and are served from one cache entry by the service layer
// (internal/service, cmd/synthd).
func CanonicalKey(sp *Spec) (string, error) { return sp.CanonicalKey() }

// Binding policies.
const (
	Fixed     = spec.Fixed
	Clockwise = spec.Clockwise
	Unfixed   = spec.Unfixed
)

// Topology selectors for Spec.Topology. The zero value (empty string)
// is the crossbar switch; TopologyFPVA selects an R×C fully
// programmable valve array with Spec.GridRows/GridCols.
const (
	TopologyCrossbar = spec.TopologyCrossbar
	TopologyFPVA     = spec.TopologyFPVA
)

// Engine names accepted by Options.Engine.
const (
	// EngineSearch is the scalable dedicated branch & bound (default).
	EngineSearch = "search"
	// EngineIQP is the paper-faithful IQP encoding solved as a MILP. It is
	// exact but only tractable for small instances.
	EngineIQP = "iqp"
)

// Options control synthesis.
type Options struct {
	// Engine selects the optimizer: EngineSearch (default) or EngineIQP.
	Engine string
	// TimeLimit bounds the optimization; on expiry the best plan found so
	// far is returned with Result.Proven == false (or an error if none).
	// Zero means no limit.
	TimeLimit time.Duration
	// PressureSharing additionally groups the essential valves into
	// minimum pressure-sharing cliques (Section 3.5).
	PressureSharing bool
	// RouteControl additionally routes the control layer: one Manhattan
	// control net per pressure group (or per valve without pressure
	// sharing), from a border control-inlet punch to every valve it
	// drives. This implements the thesis' declared future work.
	RouteControl bool
	// SolverWorkers is the number of branch-and-bound goroutines the
	// search engine explores the tree with (0 or 1 = sequential). The
	// plan is bit-identical for every value — the worker count is a pure
	// throughput knob and never partitions result caches. Ignored by the
	// IQP engine.
	SolverWorkers int
	// SkipVerify disables the internal contamination re-check (used only
	// by benchmarks; plans are always safe to verify).
	SkipVerify bool
	// SeedIncumbent, when non-nil, warm-starts the search engine with a
	// previously proven plan for an equivalent spec (typically the
	// adapted nearest neighbor from a similarity index): the seed is
	// re-validated and installed as the starting incumbent so the branch
	// and bound opens with a tight upper bound. Seeding never changes
	// the answer — a seeded solve that completes emits a byte-identical
	// proven plan to a cold one — and an invalid seed is counted and
	// ignored, never fatal. Ignored by the IQP engine.
	SeedIncumbent *Result
	// OnIncumbent, when non-nil, receives each successively better
	// anytime incumbent while the solve is still running: a degraded
	// snapshot Result with LowerBound and Gap filled. This powers the
	// service layer's streaming-refinement mode. The callback may fire
	// concurrently from multiple solver goroutines (see
	// search.Options.OnIncumbent for the exact contract); it is ignored
	// by the IQP engine.
	OnIncumbent func(*Result)
}

// Synthesis bundles the routing plan with the control-layer analyses.
type Synthesis struct {
	// Result is the routed, scheduled and bound plan.
	*Result
	// Valves is the valve status/essentiality analysis of the plan.
	Valves *valve.Analysis
	// Pressure is the pressure-sharing clique cover over the essential
	// valves (nil unless Options.PressureSharing).
	Pressure *clique.Cover
	// Control is the routed control layer (nil unless Options.RouteControl).
	Control *ctrl.Plan
}

// NumValves returns the number of essential valves (the paper's #v).
func (s *Synthesis) NumValves() int { return s.Valves.NumValves() }

// ControlInlets returns the number of control inlets needed: the number of
// pressure-sharing groups if pressure sharing ran, else one per essential
// valve.
func (s *Synthesis) ControlInlets() int {
	if s.Pressure != nil {
		return s.Pressure.NumGroups()
	}
	return s.NumValves()
}

// SVG renders the synthesized switch (flow layer, valves, binding, and the
// control layer when routed).
func (s *Synthesis) SVG() string {
	return render.SVG(s.Result, s.Valves, s.Pressure, render.SVGOptions{
		ShowRemoved: true,
		Scalable:    s.Spec.Scalable,
		Title:       s.Spec.Name,
		Control:     s.Control,
	})
}

// ASCII renders the synthesized switch as terminal art.
func (s *Synthesis) ASCII() string { return render.ASCII(s.Result) }

// Summary returns a one-paragraph human-readable result summary with the
// paper's reported feature values (T, L, #v, #s).
func (s *Synthesis) Summary() string {
	var b strings.Builder
	substrate := fmt.Sprintf("%d-pin switch", s.Spec.SwitchPins)
	if s.Spec.IsFPVA() {
		substrate = fmt.Sprintf("%dx%d FPVA grid", s.Spec.GridRows, s.Spec.GridCols)
	}
	fmt.Fprintf(&b, "%s: %s, %s binding: ", s.Spec.Name, substrate, s.Spec.Binding)
	fmt.Fprintf(&b, "T=%.3fs L=%.1fmm #v=%d #s=%d", s.Runtime.Seconds(), s.Length, s.NumValves(), s.NumSets)
	if s.Pressure != nil {
		fmt.Fprintf(&b, " control-inlets=%d", s.Pressure.NumGroups())
	}
	if !s.Proven {
		b.WriteString(" (time limit hit; best plan found, optimality unproven)")
	}
	return b.String()
}

// Synthesize produces an application-specific switch for sp.
func Synthesize(sp *Spec, opts Options) (*Synthesis, error) {
	return SynthesizeContext(context.Background(), sp, opts)
}

// SynthesizeContext is Synthesize with cancellation: when ctx is
// cancelled or its deadline expires, the optimization stops and either
// the best incumbent found so far is returned (Result.Proven == false)
// or an *ErrTimeout wrapping ctx.Err(). The post-optimization analyses
// (verification, valves, pressure sharing, control routing) run to
// completion once a plan exists; they are fast relative to the solve.
func SynthesizeContext(ctx context.Context, sp *Spec, opts Options) (*Synthesis, error) {
	res, err := SolvePlan(ctx, sp, opts)
	if err != nil {
		return nil, err
	}
	return Analyze(res, opts)
}

// SolvePlan runs only the optimizer: routing, scheduling and binding,
// without the control-layer analyses. Long-running services cache the
// returned plan and run Analyze per request. Timeouts surface as
// *ErrTimeout for both engines.
func SolvePlan(ctx context.Context, sp *Spec, opts Options) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, &ErrTimeout{SpecName: sp.Name, Cause: err}
	}
	switch opts.Engine {
	case "", EngineSearch:
		return search.Solve(sp, search.Options{
			TimeLimit:     opts.TimeLimit,
			Ctx:           ctx,
			Workers:       opts.SolverWorkers,
			SeedIncumbent: opts.SeedIncumbent,
			OnIncumbent:   opts.OnIncumbent,
		})
	case EngineIQP:
		res, err := model.Solve(sp, model.Options{TimeLimit: iqpTimeLimit(ctx, opts.TimeLimit), Ctx: ctx})
		// Translate the MILP limit error so both engines report
		// timeouts and cancellations as the one public type.
		var lim *model.ErrLimit
		if errors.As(err, &lim) {
			cause := lim.Cause
			if cause == nil {
				cause = ctx.Err()
			}
			err = &ErrTimeout{SpecName: lim.SpecName, Cause: cause}
		}
		return res, err
	default:
		return nil, fmt.Errorf("switchsynth: unknown engine %q", opts.Engine)
	}
}

// Analyze derives the control layer for a solved plan: verification
// (unless opts.SkipVerify), valve status/essentiality analysis, and the
// optional pressure-sharing cover and control routing. It accepts plans
// from SolvePlan as well as externally deserialized ones (internal/planio).
func Analyze(res *Result, opts Options) (*Synthesis, error) {
	if !opts.SkipVerify {
		if verr := contam.Verify(res); verr != nil {
			return nil, fmt.Errorf("switchsynth: internal error, plan failed verification: %w", verr)
		}
	}
	va, err := valve.Analyze(res)
	if err != nil {
		return nil, err
	}
	syn := &Synthesis{Result: res, Valves: va}
	if opts.PressureSharing {
		cover := clique.MinCover(valve.CompatibilityMatrix(va.EssentialValves()))
		syn.Pressure = &cover
	}
	if opts.RouteControl {
		plan, err := ctrl.Route(res, va, syn.Pressure)
		if err != nil {
			return nil, err
		}
		if err := ctrl.Verify(plan, res, va); err != nil {
			return nil, fmt.Errorf("switchsynth: internal error, control plan failed verification: %w", err)
		}
		syn.Control = plan
	}
	return syn, nil
}

// iqpTimeLimit folds a context deadline into the IQP engine's wall-clock
// limit (the MILP substrate has no context plumbing).
func iqpTimeLimit(ctx context.Context, limit time.Duration) time.Duration {
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); limit <= 0 || rem < limit {
			return rem
		}
	}
	return limit
}

// Verify re-checks a plan against every contamination, collision, binding
// and structural rule. Synthesize already verifies internally; this is for
// externally constructed or deserialized plans.
func Verify(res *Result) error { return contam.Verify(res) }

// NewSwitch constructs the full (unreduced) N-pin switch model, N ∈ {8, 12,
// 16}. Useful for inspecting the topology the synthesizer reduces.
func NewSwitch(numPins int) (*topo.Switch, error) { return topo.NewGrid(numPins) }

// BaselineReport quantifies what happens to a spec's flows on a
// contamination-unaware Columba-style spine switch: the comparison behind
// the paper's Figures 4.1(d) and 4.2(c)(d).
type BaselineReport struct {
	// PollutedPairs counts the conflicting flow pairs that share a node or
	// segment on the spine.
	PollutedPairs int
	// ContaminatedNodes and ContaminatedSegments count the polluted
	// junctions and channel segments.
	ContaminatedNodes    int
	ContaminatedSegments int
	// SVG draws the polluted spine routing.
	SVG string
}

// SpineBaseline routes sp's flows on a Columba-style spine-with-junctions
// switch (modules bound sequentially, every flow on its unique spine route)
// and reports the resulting contamination. The paper's switch avoids by
// construction what this baseline cannot.
func SpineBaseline(sp *Spec) (*BaselineReport, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	spine, err := topo.NewSpine(len(sp.Modules))
	if err != nil {
		return nil, err
	}
	pinOf := contam.SourceFirstBinding(sp, spine)
	routes, err := contam.BaselineRoutes(sp, spine, pinOf)
	if err != nil {
		return nil, err
	}
	rep := contam.Analyze(sp, spine, routes)
	res := &Result{
		Spec:    sp,
		Switch:  spine,
		PinOf:   pinOf,
		Routes:  routes,
		NumSets: len(routes),
		Engine:  "spine-baseline",
	}
	for _, rt := range routes {
		res.UsedEdgeMask = res.UsedEdgeMask.Or(rt.Path.EdgeMask)
	}
	for e := range spine.Edges {
		if res.UsedEdgeMask.Has(e) {
			res.Length += spine.Edges[e].Length
		}
	}
	svg := render.SVG(res, nil, nil, render.SVGOptions{
		ShowRemoved: true,
		Title:       fmt.Sprintf("%s on Columba-style spine (%d polluted conflict pairs)", sp.Name, rep.ConflictPairsPolluted),
	})
	return &BaselineReport{
		PollutedPairs:        rep.ConflictPairsPolluted,
		ContaminatedNodes:    len(rep.ContaminatedVertices),
		ContaminatedSegments: len(rep.ContaminatedEdges),
		SVG:                  svg,
	}, nil
}

// WashPlan is a wash-aware schedule produced by SynthesizeWithWashes.
type WashPlan = wash.Plan

// SynthesizeWithWashes is the fallback for specs that have no strictly
// contamination-free plan under their binding policy (the paper's
// "no solution" rows): flows are routed with the collision rules only, the
// flow sets get an execution order, and wash operations (full flushes) are
// inserted between sets so that every conflicting pair that shares channels
// is separated by a wash. The number of washes is minimized.
func SynthesizeWithWashes(sp *Spec, opts Options) (*WashPlan, error) {
	plan, err := wash.Schedule(sp, wash.Options{TimeLimit: opts.TimeLimit})
	if err != nil {
		return nil, err
	}
	if err := plan.Verify(); err != nil {
		return nil, fmt.Errorf("switchsynth: internal error, wash plan failed verification: %w", err)
	}
	return plan, nil
}

// SimReport is the outcome of a fluidic simulation.
type SimReport = sim.Report

// Simulate executes the synthesis on the conservative fluidic simulator:
// flow sets run in order, valves follow their analyzed statuses (resolved
// through the shared pressure sequences when pressure sharing ran), fluids
// flood every open channel, and the report lists misroutes, collisions,
// unreached outlets and residue contaminations. A verified synthesis
// simulates clean.
func (s *Synthesis) Simulate() (*SimReport, error) {
	return sim.Run(s.Result, sim.Options{Valves: s.Valves, Pressure: s.Pressure})
}
