// Benchmarks regenerating the paper's evaluation: one benchmark (or family)
// per table and figure, plus ablations of the design choices documented in
// DESIGN.md and micro-benchmarks of the solver substrates. Run with
//
//	go test -bench=. -benchmem
//
// The row/series values themselves are printed by cmd/experiments; these
// benchmarks measure the cost of regenerating them.
package switchsynth_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/cases"
	"switchsynth/internal/clique"
	"switchsynth/internal/cluster"
	"switchsynth/internal/drc"
	"switchsynth/internal/exp"
	"switchsynth/internal/fpva"
	"switchsynth/internal/lp"
	"switchsynth/internal/milp"
	"switchsynth/internal/planio"
	"switchsynth/internal/render"
	"switchsynth/internal/search"
	"switchsynth/internal/service"
	"switchsynth/internal/spec"
	"switchsynth/internal/store"
	"switchsynth/internal/topo"
	"switchsynth/internal/valve"
)

// bounded synthesizes with a limit, accepting either an optimum or a best
// incumbent; proofs of infeasibility are also valid outcomes for the
// no-solution rows.
func bounded(b *testing.B, sp *spec.Spec, limit time.Duration) {
	b.Helper()
	_, err := search.Solve(sp, search.Options{TimeLimit: limit})
	if err != nil {
		if _, ok := err.(*spec.ErrNoSolution); ok {
			return
		}
		if _, ok := err.(*search.ErrTimeout); ok {
			return
		}
		b.Fatal(err)
	}
}

// --- Table 4.1: contamination avoidance -----------------------------------

func BenchmarkTable41_ChIP_Fixed(b *testing.B) {
	c := cases.ChIPSw1()
	for i := 0; i < b.N; i++ {
		bounded(b, c.WithBinding(spec.Fixed), 0)
	}
}

func BenchmarkTable41_ChIP_Clockwise(b *testing.B) {
	c := cases.ChIPSw1()
	for i := 0; i < b.N; i++ {
		bounded(b, c.WithBinding(spec.Clockwise), 10*time.Second)
	}
}

func BenchmarkTable41_ChIP_Unfixed(b *testing.B) {
	// The paper's Gurobi run took 8336 s on this case; benchmark the
	// bounded incumbent search.
	c := cases.ChIPSw1()
	for i := 0; i < b.N; i++ {
		bounded(b, c.WithBinding(spec.Unfixed), 300*time.Millisecond)
	}
}

func BenchmarkTable41_NucleicAcid_Unfixed(b *testing.B) {
	c := cases.NucleicAcid()
	for i := 0; i < b.N; i++ {
		bounded(b, c.WithBinding(spec.Unfixed), 10*time.Second)
	}
}

func BenchmarkTable41_NucleicAcid_NoSolutionProofFixed(b *testing.B) {
	c := cases.NucleicAcid()
	for i := 0; i < b.N; i++ {
		bounded(b, c.WithBinding(spec.Fixed), 0)
	}
}

func BenchmarkTable41_NucleicAcid_NoSolutionProofClockwise(b *testing.B) {
	c := cases.NucleicAcid()
	for i := 0; i < b.N; i++ {
		bounded(b, c.WithBinding(spec.Clockwise), 0)
	}
}

func BenchmarkTable41_MRNA_Unfixed(b *testing.B) {
	c := cases.MRNAIsolation()
	for i := 0; i < b.N; i++ {
		bounded(b, c.WithBinding(spec.Unfixed), 300*time.Millisecond)
	}
}

// --- Table 4.2 / Figure 4.4: flow scheduling -------------------------------

func BenchmarkTable42_SchedulingExample(b *testing.B) {
	c := cases.SchedulingExample()
	for i := 0; i < b.N; i++ {
		bounded(b, c.Spec, 5*time.Second)
	}
}

// --- Table 4.3: binding policies -------------------------------------------

func BenchmarkTable43_KinaseSw1_AllPolicies(b *testing.B) {
	c := cases.KinaseSw1()
	for i := 0; i < b.N; i++ {
		for _, p := range []spec.BindingPolicy{spec.Fixed, spec.Clockwise, spec.Unfixed} {
			bounded(b, c.WithBinding(p), 5*time.Second)
		}
	}
}

func BenchmarkTable43_KinaseSw2_AllPolicies(b *testing.B) {
	c := cases.KinaseSw2()
	for i := 0; i < b.N; i++ {
		for _, p := range []spec.BindingPolicy{spec.Fixed, spec.Clockwise, spec.Unfixed} {
			bounded(b, c.WithBinding(p), 5*time.Second)
		}
	}
}

func BenchmarkTable43_ChIPSw2_Clockwise(b *testing.B) {
	c := cases.ChIPSw2()
	for i := 0; i < b.N; i++ {
		bounded(b, c.WithBinding(spec.Clockwise), 10*time.Second)
	}
}

// --- Section 4.2: artificial campaign --------------------------------------

func BenchmarkCampaign_10Cases(b *testing.B) {
	cs := cases.Artificial(10, 42)
	for i := 0; i < b.N; i++ {
		for _, c := range cs {
			bounded(b, c.Spec, 2*time.Second)
		}
	}
}

// --- Figures 4.1–4.3: synthesized switch renderings ------------------------

func BenchmarkFig41_ChIP_SVG(b *testing.B) {
	syn, err := switchsynth.Synthesize(cases.ChIPSw1().WithBinding(spec.Fixed),
		switchsynth.Options{PressureSharing: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(syn.SVG()) == 0 {
			b.Fatal("empty SVG")
		}
	}
}

func BenchmarkFig42_SpineBaseline(b *testing.B) {
	sp := cases.NucleicAcid().Spec
	for i := 0; i < b.N; i++ {
		if _, err := switchsynth.SpineBaseline(sp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig43_ScalableSVG(b *testing.B) {
	syn, err := switchsynth.Synthesize(cases.ChIPSw1().WithBinding(spec.Fixed),
		switchsynth.Options{PressureSharing: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svg := render.SVG(syn.Result, syn.Valves, syn.Pressure,
			render.SVGOptions{Scalable: true, ShowRemoved: true})
		if len(svg) == 0 {
			b.Fatal("empty SVG")
		}
	}
}

func BenchmarkFig44_ASCII(b *testing.B) {
	res, err := search.Solve(cases.SchedulingExample().Spec, search.Options{TimeLimit: 5 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(render.ASCII(res)) == 0 {
			b.Fatal("empty art")
		}
	}
}

// --- Ablations --------------------------------------------------------------

func BenchmarkAblation_SymmetryBreaking_On(b *testing.B) {
	sp := symSpec()
	for i := 0; i < b.N; i++ {
		if _, err := search.Solve(sp, search.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_SymmetryBreaking_Off(b *testing.B) {
	sp := symSpec()
	for i := 0; i < b.N; i++ {
		if _, err := search.Solve(sp, search.Options{DisableSymmetryBreaking: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func symSpec() *spec.Spec {
	return &spec.Spec{
		Name:       "ablate-sym",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Unfixed,
	}
}

func BenchmarkAblation_Engine_Search(b *testing.B) {
	sp := engineSpec()
	for i := 0; i < b.N; i++ {
		if _, err := switchsynth.Synthesize(sp, switchsynth.Options{Engine: switchsynth.EngineSearch}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Engine_IQP(b *testing.B) {
	// The paper-faithful IQP-as-MILP encoding on the same case: the cost of
	// faithfulness (Gurobi substitute) versus the dedicated search.
	sp := engineSpec()
	for i := 0; i < b.N; i++ {
		if _, err := switchsynth.Synthesize(sp, switchsynth.Options{
			Engine: switchsynth.EngineIQP, TimeLimit: 2 * time.Minute,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func engineSpec() *spec.Spec {
	return &spec.Spec{
		Name:       "ablate-engine",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"a": 1, "x": 5, "b": 7, "y": 3},
	}
}

func BenchmarkAblation_PressureSharing_Exact(b *testing.B) {
	comp := pressureMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clique.MinCover(comp)
	}
}

func BenchmarkAblation_PressureSharing_ILP(b *testing.B) {
	// The paper's ILP formulation is much heavier than the coloring search;
	// cap the instance so one measured solve stays in seconds.
	comp := pressureMatrix(b)
	if len(comp) > 9 {
		comp = comp[:9]
		for i := range comp {
			comp[i] = comp[i][:9]
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clique.MinCoverILP(comp, clique.ILPOptions{TimeLimit: time.Minute}); err != nil {
			b.Fatal(err)
		}
	}
}

func pressureMatrix(b *testing.B) [][]bool {
	b.Helper()
	res, err := search.Solve(cases.SchedulingExample().Spec, search.Options{TimeLimit: 5 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	va, err := valve.Analyze(res)
	if err != nil {
		b.Fatal(err)
	}
	return valve.CompatibilityMatrix(va.EssentialValves())
}

// --- Solver: allocation profile and parallel speedup ------------------------

// searchRing16 is the parallel-solver benchmark instance: a saturated
// 16-module distribution ring on the 16-pin switch under the clockwise
// policy. Five inlets feed the eleven remaining modules round-robin with a
// one-step phase shift, which places the cheapest rotation late in the
// sequential candidate order: a single descent commits to an expensive
// rotation early, while diversified parallel workers reach the cheap
// rotation almost immediately and their shared incumbent prunes the rest.
// All sixteen modules are bound, so the only root freedom is the rotation —
// the instance is proven optimal in about a second sequentially, and the
// sequential/parallel node ratio is the speedup ci.sh tracks in
// BENCH_search.json.
func searchRing16() *spec.Spec {
	mods := make([]string, 16)
	for i := range mods {
		mods[i] = "m" + strconv.Itoa(i)
	}
	return &spec.Spec{
		Name:       "search-ring-16",
		SwitchPins: 16,
		Modules:    mods,
		Flows: []spec.Flow{
			{From: mods[3], To: mods[1]},
			{From: mods[6], To: mods[2]},
			{From: mods[9], To: mods[4]},
			{From: mods[12], To: mods[5]},
			{From: mods[0], To: mods[7]},
			{From: mods[3], To: mods[8]},
			{From: mods[6], To: mods[10]},
			{From: mods[9], To: mods[11]},
			{From: mods[12], To: mods[13]},
			{From: mods[0], To: mods[14]},
			{From: mods[3], To: mods[15]},
		},
		Binding: spec.Clockwise,
	}
}

// benchSearch runs the exact solver with an allocation report; infeasibility
// proofs and bounded incumbents are valid outcomes, as in bounded().
func benchSearch(b *testing.B, sp *spec.Spec, workers int, limit time.Duration) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := search.Solve(sp, search.Options{Workers: workers, TimeLimit: limit})
		if err != nil {
			if _, ok := err.(*spec.ErrNoSolution); ok {
				continue
			}
			if _, ok := err.(*search.ErrTimeout); ok {
				continue
			}
			b.Fatal(err)
		}
	}
}

// The fixed/clockwise/unfixed family profiles allocation behaviour across
// switch sizes: the 8-pin rows prove infeasibility (Table 4.1), the 12-pin
// rows solve the kinase case, and the 16-pin rows run the ring instance
// (identity pins for the fixed row, a bounded incumbent for the unfixed row).

func BenchmarkSearch_8Pin_Fixed(b *testing.B) {
	benchSearch(b, cases.NucleicAcid().WithBinding(spec.Fixed), 0, 0)
}

func BenchmarkSearch_8Pin_Clockwise(b *testing.B) {
	benchSearch(b, cases.NucleicAcid().WithBinding(spec.Clockwise), 0, 0)
}

func BenchmarkSearch_8Pin_Unfixed(b *testing.B) {
	benchSearch(b, cases.NucleicAcid().WithBinding(spec.Unfixed), 0, 10*time.Second)
}

func BenchmarkSearch_12Pin_Fixed(b *testing.B) {
	benchSearch(b, cases.KinaseSw1().WithBinding(spec.Fixed), 0, 0)
}

func BenchmarkSearch_12Pin_Clockwise(b *testing.B) {
	benchSearch(b, cases.KinaseSw1().WithBinding(spec.Clockwise), 0, 10*time.Second)
}

func BenchmarkSearch_12Pin_Unfixed(b *testing.B) {
	benchSearch(b, cases.KinaseSw1().WithBinding(spec.Unfixed), 0, 10*time.Second)
}

func BenchmarkSearch_16Pin_Fixed(b *testing.B) {
	sp := searchRing16()
	sp.Binding = spec.Fixed
	sp.FixedPins = make(map[string]int, len(sp.Modules))
	for i, m := range sp.Modules {
		sp.FixedPins[m] = i
	}
	benchSearch(b, sp, 0, 10*time.Second)
}

func BenchmarkSearch_16Pin_Clockwise(b *testing.B) {
	benchSearch(b, searchRing16(), 0, 60*time.Second)
}

func BenchmarkSearch_16Pin_Unfixed(b *testing.B) {
	sp := searchRing16()
	sp.Binding = spec.Unfixed
	benchSearch(b, sp, 0, 300*time.Millisecond)
}

// Sequential16/Parallel16 are the BENCH_search.json pair: the same full
// proof on the ring instance at one worker versus four. The results are
// bit-identical; only the node counts and wall clock differ.

func BenchmarkSearch_Sequential16(b *testing.B) {
	benchSearch(b, searchRing16(), 0, 60*time.Second)
}

func BenchmarkSearch_Parallel16(b *testing.B) {
	benchSearch(b, searchRing16(), 4, 60*time.Second)
}

// --- Substrates --------------------------------------------------------------

func BenchmarkSubstrate_PathTable8(b *testing.B)  { benchPathTable(b, 8) }
func BenchmarkSubstrate_PathTable12(b *testing.B) { benchPathTable(b, 12) }
func BenchmarkSubstrate_PathTable16(b *testing.B) { benchPathTable(b, 16) }

func benchPathTable(b *testing.B, pins int) {
	sw, err := topo.NewGrid(pins)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if topo.BuildPathTable(sw).NumPaths() == 0 {
			b.Fatal("no paths")
		}
	}
}

// --- FPVA: grid synthesis and test-pattern generation -----------------------

// fpvaBenchSpec is the canonical FPVA benchmark case: two inlets, three
// outlets, one conflicting pair, unfixed binding (the RunFPVAScaling
// spec shape).
func fpvaBenchSpec(rows, cols int) *spec.Spec {
	return &spec.Spec{
		Name:     "fpva-bench",
		Topology: spec.TopologyFPVA,
		GridRows: rows,
		GridCols: cols,
		Modules:  []string{"in1", "in2", "out1", "out2", "out3"},
		Flows: []spec.Flow{
			{From: "in1", To: "out1"},
			{From: "in2", To: "out2"},
			{From: "in1", To: "out3"},
		},
		Conflicts: [][2]int{{0, 1}},
		Binding:   spec.Unfixed,
	}
}

func BenchmarkFPVA_Solve3x3(b *testing.B) {
	sp := fpvaBenchSpec(3, 3)
	for i := 0; i < b.N; i++ {
		bounded(b, sp, 10*time.Second)
	}
}

func BenchmarkFPVA_Solve4x4(b *testing.B) {
	sp := fpvaBenchSpec(4, 4)
	for i := 0; i < b.N; i++ {
		bounded(b, sp, 10*time.Second)
	}
}

func benchFPVAPatterns(b *testing.B, rows, cols int) {
	sw, err := topo.SharedFPVASwitch(rows, cols)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		patterns, err := fpva.TestPatterns(sw)
		if err != nil {
			b.Fatal(err)
		}
		if len(patterns) == 0 {
			b.Fatal("empty pattern set")
		}
	}
}

func BenchmarkFPVA_TestPatterns4x4(b *testing.B) { benchFPVAPatterns(b, 4, 4) }
func BenchmarkFPVA_TestPatterns8x8(b *testing.B) { benchFPVAPatterns(b, 8, 8) }

// BenchmarkFPVA_Diagnose8x8 measures fault localization from a healthy
// observation vector on the largest sweep grid.
func BenchmarkFPVA_Diagnose8x8(b *testing.B) {
	sw, err := topo.SharedFPVASwitch(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	patterns, err := fpva.TestPatterns(sw)
	if err != nil {
		b.Fatal(err)
	}
	wet := make([]topo.Bits, len(patterns))
	for i, p := range patterns {
		wet[i] = p.Expect
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := fpva.Diagnose(sw, patterns, wet)
		if err != nil {
			b.Fatal(err)
		}
		if !d.Healthy {
			b.Fatal("healthy observations diagnosed as faulty")
		}
	}
}

func BenchmarkSubstrate_LPSimplex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := lp.NewProblem(30)
		for v := 0; v < 30; v++ {
			p.SetObjective(v, float64(v%7)-3)
			p.SetBounds(v, 0, 10)
		}
		for r := 0; r < 20; r++ {
			var terms []lp.Term
			for v := r; v < 30; v += 3 {
				terms = append(terms, lp.Term{Var: v, Coef: float64(1 + (v+r)%4)})
			}
			p.AddConstraint(terms, lp.LE, float64(20+r))
		}
		if s := lp.Solve(p); s.Status != lp.Optimal {
			b.Fatalf("status %v", s.Status)
		}
	}
}

func BenchmarkSubstrate_MILPKnapsack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := milp.NewModel("bench")
		obj := milp.NewLinExpr()
		cap := milp.NewLinExpr()
		for v := 0; v < 18; v++ {
			x := m.NewBinary("x")
			obj.Add(-float64(1+v%5), x)
			cap.Add(float64(1+v%4), x)
		}
		m.AddConstraint(cap, lp.LE, 12)
		m.SetObjective(obj)
		if s := m.Solve(milp.Options{}); s.Status != milp.Optimal {
			b.Fatalf("status %v", s.Status)
		}
	}
}

// --- Extensions: simulator, wash recovery, control routing, DRC, GRU -------

func BenchmarkExtension_Simulator(b *testing.B) {
	syn, err := switchsynth.Synthesize(cases.SchedulingExample().Spec,
		switchsynth.Options{TimeLimit: 5 * time.Second, PressureSharing: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := syn.Simulate()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Clean() {
			b.Fatal("verified plan simulated dirty")
		}
	}
}

func BenchmarkExtension_WashRecovery(b *testing.B) {
	sp := cases.NucleicAcid().WithBinding(spec.Fixed)
	for i := 0; i < b.N; i++ {
		plan, err := switchsynth.SynthesizeWithWashes(sp, switchsynth.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if plan.NumWashes == 0 {
			b.Fatal("expected washes")
		}
	}
}

func BenchmarkExtension_ControlRouting(b *testing.B) {
	sp := &spec.Spec{
		Name:       "bench-ctrl",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"a": 1, "x": 5, "b": 7, "y": 3},
	}
	for i := 0; i < b.N; i++ {
		syn, err := switchsynth.Synthesize(sp, switchsynth.Options{
			PressureSharing: true, RouteControl: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if syn.Control.TotalLength <= 0 {
			b.Fatal("no control channels")
		}
	}
}

func BenchmarkExtension_DRC16Pin(b *testing.B) {
	sw, err := topo.NewGrid(16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !drc.Clean(sw, drc.DefaultRules()) {
			b.Fatal("grid should be clean")
		}
	}
}

func BenchmarkExtension_GRUInfeasibilityProof(b *testing.B) {
	gru, err := topo.NewGRU(1)
	if err != nil {
		b.Fatal(err)
	}
	pt := topo.BuildPathTable(gru)
	sp := &spec.Spec{
		Name:       "bench-gru",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"a": 0, "b": 1, "x": 5, "y": 3},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.SolveOn(sp, gru, pt, search.Options{}); err == nil {
			b.Fatal("GRU conflict should be infeasible")
		}
	}
}

func BenchmarkScaling_Modules8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := exp.RunScaling(exp.Config{TimeLimit: 10 * time.Second}, []int{8})
		if len(pts) != 1 || !pts[0].Proven {
			b.Fatal("scaling point failed")
		}
	}
}

// --- Service layer: cold vs cached synthesis --------------------------------

func serviceBenchSpec() *spec.Spec {
	return &spec.Spec{
		Name:       "bench-service",
		SwitchPins: 8,
		Modules:    []string{"sample", "buffer", "mix1", "mix2"},
		Flows: []spec.Flow{
			{From: "sample", To: "mix1"},
			{From: "buffer", To: "mix2"},
		},
		Conflicts: [][2]int{{0, 1}},
		Binding:   spec.Unfixed,
	}
}

// BenchmarkService_ColdSynthesize measures a full cache-miss request:
// fresh engine, canonical hashing, queueing, solving, and analysis.
func BenchmarkService_ColdSynthesize(b *testing.B) {
	sp := serviceBenchSpec()
	for i := 0; i < b.N; i++ {
		e := service.New(service.Config{Workers: 2})
		if _, err := e.Do(context.Background(), sp, switchsynth.Options{PressureSharing: true}); err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
}

// BenchmarkService_CachedSynthesize measures a warm request: canonical
// hashing, cache lookup, plan adaptation, and analysis — no solve.
func BenchmarkService_CachedSynthesize(b *testing.B) {
	e := service.New(service.Config{Workers: 2})
	defer e.Close()
	sp := serviceBenchSpec()
	if _, err := e.Do(context.Background(), sp, switchsynth.Options{PressureSharing: true}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := e.Do(context.Background(), sp, switchsynth.Options{PressureSharing: true})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.CacheHit {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkService_ParallelCampaign measures the 12-case campaign through
// the engine at GOMAXPROCS workers (compare BenchmarkCampaign_10Cases for
// the sequential solver cost).
func BenchmarkService_ParallelCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.RunCampaign(exp.Config{TimeLimit: 2 * time.Second}, 12, 42)
		if res.Stats.Solved == 0 {
			b.Fatal("campaign solved nothing")
		}
	}
}

// --- Durable plan store: cold solve vs memory hit vs disk hit vs warm boot ---

// storeBenchDir opens a synchronous-durability store for benchmarking.
func storeBenchDir(b *testing.B, dir string) *store.Store {
	b.Helper()
	st, err := store.Open(dir, store.Options{FlushInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkStore_ColdSolve is the baseline the store amortizes: a full
// solve with write-through to disk on every iteration.
func BenchmarkStore_ColdSolve(b *testing.B) {
	sp := serviceBenchSpec()
	for i := 0; i < b.N; i++ {
		st := storeBenchDir(b, b.TempDir())
		e := service.New(service.Config{Workers: 2, Store: st})
		if _, err := e.Do(context.Background(), sp, switchsynth.Options{PressureSharing: true}); err != nil {
			b.Fatal(err)
		}
		e.Close()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStore_MemoryHit measures the first tier: the repeat request
// never reaches the disk store.
func BenchmarkStore_MemoryHit(b *testing.B) {
	st := storeBenchDir(b, b.TempDir())
	defer st.Close()
	e := service.New(service.Config{Workers: 2, Store: st})
	defer e.Close()
	sp := serviceBenchSpec()
	if _, err := e.Do(context.Background(), sp, switchsynth.Options{PressureSharing: true}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := e.Do(context.Background(), sp, switchsynth.Options{PressureSharing: true})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.CacheHit || resp.DiskHit {
			b.Fatal("expected a memory-tier hit")
		}
	}
}

// BenchmarkStore_DiskHit measures the second tier in isolation: the
// memory cache is disabled, so every repeat request reads, CRC-checks,
// and decodes the persisted plan, then re-runs analysis.
func BenchmarkStore_DiskHit(b *testing.B) {
	st := storeBenchDir(b, b.TempDir())
	defer st.Close()
	e := service.New(service.Config{Workers: 2, CacheSize: -1, Store: st})
	defer e.Close()
	sp := serviceBenchSpec()
	if _, err := e.Do(context.Background(), sp, switchsynth.Options{PressureSharing: true}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := e.Do(context.Background(), sp, switchsynth.Options{PressureSharing: true})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.DiskHit {
			b.Fatal("expected a disk-tier hit")
		}
	}
}

// BenchmarkStore_WarmBoot measures the restart path end to end: every
// iteration opens the store directory (WAL/segment replay), builds a
// fresh engine with an empty memory cache, and answers the previously
// solved spec from disk.
func BenchmarkStore_WarmBoot(b *testing.B) {
	dir := b.TempDir()
	st := storeBenchDir(b, dir)
	e := service.New(service.Config{Workers: 2, Store: st})
	sp := serviceBenchSpec()
	if _, err := e.Do(context.Background(), sp, switchsynth.Options{PressureSharing: true}); err != nil {
		b.Fatal(err)
	}
	e.Close()
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := storeBenchDir(b, dir)
		e := service.New(service.Config{Workers: 2, Store: st})
		resp, err := e.Do(context.Background(), sp, switchsynth.Options{PressureSharing: true})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.DiskHit {
			b.Fatal("expected a warm-boot disk hit")
		}
		e.Close()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Cluster tier: local cache hit vs peer fill vs cold solve ---

// clusterBenchSpec returns a fast-solving spec whose canonical job key
// is owned by ownerID under a two-node ring; pin count is the search
// knob (the canonical key ignores Name).
func clusterBenchSpec(b *testing.B, r *cluster.Ring, ownerID string) *spec.Spec {
	b.Helper()
	for i := 0; i < 6; i++ {
		sp := &spec.Spec{
			Name:       "cluster-bench",
			SwitchPins: 12,
			Modules:    []string{"sample", "buffer", "mix1", "mix2"},
			Flows:      []spec.Flow{{From: "sample", To: "mix1"}, {From: "buffer", To: "mix2"}},
			Binding:    spec.Unfixed,
		}
		switch i {
		case 1:
			sp.Conflicts = [][2]int{{0, 1}}
		case 2:
			sp.Modules = []string{"sample", "mix1"}
			sp.Flows = sp.Flows[:1]
		case 3:
			sp.Modules = []string{"sample", "buffer", "rinse", "mix1", "mix2", "mix3"}
			sp.Flows = []spec.Flow{{From: "sample", To: "mix1"}, {From: "buffer", To: "mix2"}, {From: "rinse", To: "mix3"}}
		case 4:
			sp.Modules = []string{"sample", "buffer", "rinse", "mix1", "mix2", "mix3"}
			sp.Flows = []spec.Flow{{From: "sample", To: "mix1"}, {From: "buffer", To: "mix2"}, {From: "rinse", To: "mix3"}}
			sp.Conflicts = [][2]int{{0, 1}}
		case 5:
			sp.SwitchPins = 16
			sp.Modules = []string{"sample", "mix1"}
			sp.Flows = sp.Flows[:1]
		}
		key, err := service.JobKey(sp, switchsynth.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if r.OwnerID(key) == ownerID {
			return sp
		}
	}
	b.Fatal("no bench spec owned by " + ownerID)
	return nil
}

// clusterBenchPeer boots an owner node ("a") with one solved plan behind
// a real HTTP server and returns the non-owner's cluster ("b") plus the
// spec that node a owns. Benchmarks built on this measure the genuine
// wire path: GET /plans/{key}, re-verify, import.
func clusterBenchPeer(b *testing.B) (*cluster.Cluster, *spec.Spec) {
	b.Helper()
	engA := service.New(service.Config{Workers: 2})
	b.Cleanup(engA.CloseNow)
	srvA := httptest.NewServer(service.NewHandler(engA))
	b.Cleanup(srvA.Close)

	peers := []cluster.Node{
		{ID: "a", URL: srvA.URL},
		{ID: "b", URL: "http://127.0.0.1:1"}, // self; never dialed
	}
	var engB *service.Engine
	clB, err := cluster.New(cluster.Config{
		SelfID:       "b",
		Peers:        peers,
		SyncInterval: -1,
		LocalKeys:    func() []string { return engB.PlanKeys() },
		LocalImport:  func(key string, data []byte) error { return engB.ImportPlan(key, data) },
	})
	if err != nil {
		b.Fatal(err)
	}
	sp := clusterBenchSpec(b, clB.Ring(), "a")
	if _, err := engA.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		b.Fatal(err)
	}
	return clB, sp
}

// BenchmarkCluster_LocalHit is the sharded steady state: the owner (or a
// warmed non-owner) answers from its own memory tier; the peer-fill hook
// is wired but never fires.
func BenchmarkCluster_LocalHit(b *testing.B) {
	clB, sp := clusterBenchPeer(b)
	e := service.New(service.Config{Workers: 2, PeerFill: clB.FetchPlan})
	defer e.Close()
	if _, err := e.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := e.Do(context.Background(), sp, switchsynth.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.CacheHit || resp.PeerHit {
			b.Fatal("expected a local memory-tier hit")
		}
	}
}

// BenchmarkCluster_PeerFill measures the cluster tier in isolation: the
// local memory cache is disabled, so every request fetches the owner's
// plan over HTTP, re-verifies it, and re-runs analysis.
func BenchmarkCluster_PeerFill(b *testing.B) {
	clB, sp := clusterBenchPeer(b)
	e := service.New(service.Config{Workers: 2, CacheSize: -1, PeerFill: clB.FetchPlan})
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := e.Do(context.Background(), sp, switchsynth.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.PeerHit {
			b.Fatal("expected a peer fill")
		}
	}
}

// BenchmarkCluster_ColdSolve is the fallback the fill amortizes: the
// same spec BenchmarkCluster_PeerFill fetches, solved from scratch. A
// solo ring makes every key self-owned, so the wired FetchPlan declines
// instantly and the engine runs a full solve on a fresh cache every
// iteration.
func BenchmarkCluster_ColdSolve(b *testing.B) {
	_, sp := clusterBenchPeer(b)
	solo, err := cluster.New(cluster.Config{
		SelfID:       "x",
		Peers:        []cluster.Node{{ID: "x", URL: "http://127.0.0.1:1"}},
		SyncInterval: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := service.New(service.Config{Workers: 2, PeerFill: solo.FetchPlan})
		resp, err := e.Do(context.Background(), sp, switchsynth.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if resp.CacheHit || resp.PeerHit {
			b.Fatal("expected a cold solve")
		}
		e.Close()
	}
}

// BenchmarkCluster_ReplicaPush prices one write-time replica push as
// the receiver experiences it: a PUT /plans/{key} round trip whose
// handler decodes, re-derives the canonical key and fully re-verifies
// the plan before storing (verify-on-receipt, cluster invariant 2).
// The receiver is rebuilt outside the timer each iteration so every
// measured push is a genuine first import, not a present-key no-op.
func BenchmarkCluster_ReplicaPush(b *testing.B) {
	donor := service.New(service.Config{Workers: 2})
	b.Cleanup(donor.CloseNow)
	ring := cluster.NewRing([]cluster.Node{{ID: "a"}, {ID: "b"}})
	sp := clusterBenchSpec(b, ring, "a")
	resp, err := donor.Do(context.Background(), sp, switchsynth.Options{})
	if err != nil {
		b.Fatal(err)
	}
	wire, ok := donor.PlanBytes(resp.Key)
	if !ok {
		b.Fatal("donor holds no plan bytes")
	}
	target := "/plans/" + url.PathEscape(resp.Key)

	var handler atomic.Value // http.Handler of the current receiver
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	b.Cleanup(srv.Close)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		recv := service.New(service.Config{Workers: 1})
		handler.Store(service.NewHandler(recv))
		b.StartTimer()
		req, err := http.NewRequest(http.MethodPut, srv.URL+target, bytes.NewReader(wire))
		if err != nil {
			b.Fatal(err)
		}
		req.Header.Set("Content-Type", planio.ContentTypeOf(wire))
		pr, err := http.DefaultClient.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		pr.Body.Close()
		if pr.StatusCode != http.StatusNoContent {
			b.Fatalf("push status %d, want 204", pr.StatusCode)
		}
		b.StopTimer()
		recv.CloseNow()
		b.StartTimer()
	}
}

// --- Plan wire formats: encode/decode cost and size --------------------------

// planioBenchResult solves the 16-pin ring instance once — the same
// campaign-scale plan the cluster moves between nodes — and hands it to
// the encode/decode benchmarks below, which are the BENCH_planio.json
// source: binary vs JSON cost per operation and bytes per plan.
func planioBenchResult(b *testing.B) *spec.Result {
	b.Helper()
	res, err := search.Solve(searchRing16(), search.Options{TimeLimit: 60 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkPlanio_EncodeJSON(b *testing.B) {
	res := planioBenchResult(b)
	data, err := planio.EncodeWire(res)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planio.EncodeWire(res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(data)), "bytes/plan")
}

func BenchmarkPlanio_EncodeBinary(b *testing.B) {
	res := planioBenchResult(b)
	data, err := planio.EncodeBinary(res)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planio.EncodeBinary(res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(data)), "bytes/plan")
}

func BenchmarkPlanio_DecodeJSON(b *testing.B) {
	data, err := planio.EncodeWire(planioBenchResult(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planio.DecodeAny(data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(data)), "bytes/plan")
}

func BenchmarkPlanio_DecodeBinary(b *testing.B) {
	data, err := planio.EncodeBinary(planioBenchResult(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planio.DecodeAny(data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(data)), "bytes/plan")
}

// BenchmarkCluster_FailoverRead prices the worst-case replica read: the
// key's owner is a dead port that every iteration dials (DownAfter is
// set unreachably high so membership never learns), fails, and fails
// over to the successor's replica. The delta against
// BenchmarkCluster_PeerFill is the cost of one refused connection on
// the read path.
func BenchmarkCluster_FailoverRead(b *testing.B) {
	engS := service.New(service.Config{Workers: 2})
	b.Cleanup(engS.CloseNow)
	srvS := httptest.NewServer(service.NewHandler(engS))
	b.Cleanup(srvS.Close)

	probe := cluster.NewRing([]cluster.Node{{ID: "o"}, {ID: "s"}, {ID: "r"}})
	sp := clusterBenchSpec(b, probe, "o")
	key, err := service.JobKey(sp, switchsynth.Options{})
	if err != nil {
		b.Fatal(err)
	}
	// The live server plays whichever node ranks just behind the dead
	// owner; the reader is the last-ranked node.
	rank := probe.Rank(key)
	urls := map[string]string{
		rank[0].ID: "http://127.0.0.1:1", // dead owner: refuses instantly
		rank[1].ID: srvS.URL,             // successor with the replica
		rank[2].ID: "http://127.0.0.1:1", // self; never dialed
	}
	peers := make([]cluster.Node, 0, 3)
	for _, id := range []string{"o", "s", "r"} {
		peers = append(peers, cluster.Node{ID: id, URL: urls[id]})
	}
	cl, err := cluster.New(cluster.Config{
		SelfID:       rank[2].ID,
		Peers:        peers,
		SyncInterval: -1,
		DownAfter:    1 << 30, // keep believing the corpse is up
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := engS.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		b.Fatal(err)
	}
	e := service.New(service.Config{Workers: 2, CacheSize: -1, PeerFill: cl.FetchPlan})
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := e.Do(context.Background(), sp, switchsynth.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.PeerHit {
			b.Fatal("expected a failover peer hit")
		}
	}
}
