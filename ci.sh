#!/usr/bin/env bash
# CI gate: vet + build + full tests, race-checked service layer, the
# seeded chaos suite (goroutine-leak gated, run twice), and two
# benchmarks: cold-vs-cached request rate (BENCH_service.json) and the
# degraded-path throughput under injected slow-solve faults
# (BENCH_resilience.json).
#
# Usage: ./ci.sh            (full gate)
#        BENCHTIME=5s ./ci.sh  (longer benchmark runs)
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test (tier 1) =="
go test ./...

echo "== go test -race (service layer) =="
go test -race ./internal/service/... ./cmd/synthd/... ./internal/search/ ./client/

echo "== chaos suite: 25 seeded fault schedules, -race -count=2 =="
# The chaos tests carry their own goroutine-leak gate (leakcheck_test.go);
# -count=2 replays every seed twice to shake out order-dependent state.
# The throughput run also emits the degraded-path benchmark.
BENCH_RESILIENCE_OUT="$PWD/BENCH_resilience.json" \
  go test -race -count=2 -run 'TestChaos' ./internal/service/
cat BENCH_resilience.json

echo "== service benchmark: cold vs cached =="
bench_out=$(go test -run '^$' -bench 'BenchmarkService_(Cold|Cached)Synthesize$' -benchtime "${BENCHTIME:-2s}" .)
echo "$bench_out"
echo "$bench_out" | awk '
  $1 ~ /^BenchmarkService_ColdSynthesize/   { cold = $3 }
  $1 ~ /^BenchmarkService_CachedSynthesize/ { cached = $3 }
  END {
    if (cold == "" || cached == "") {
      print "ci.sh: benchmark output incomplete" > "/dev/stderr"
      exit 1
    }
    printf "{\n"
    printf "  \"coldNsPerOp\": %.0f,\n", cold
    printf "  \"cachedNsPerOp\": %.0f,\n", cached
    printf "  \"coldReqPerSec\": %.1f,\n", 1e9 / cold
    printf "  \"cachedReqPerSec\": %.1f,\n", 1e9 / cached
    printf "  \"cachedSpeedup\": %.1f\n", cold / cached
    printf "}\n"
  }' > BENCH_service.json
cat BENCH_service.json

echo "ci.sh: OK"
