#!/usr/bin/env bash
# CI gate: vet + build + full tests, race-checked service layer, and the
# service throughput benchmark (cold vs cached request rate), which is
# written to BENCH_service.json.
#
# Usage: ./ci.sh            (full gate)
#        BENCHTIME=5s ./ci.sh  (longer benchmark runs)
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test (tier 1) =="
go test ./...

echo "== go test -race (service layer) =="
go test -race ./internal/service/... ./cmd/synthd/... ./internal/search/

echo "== service benchmark: cold vs cached =="
bench_out=$(go test -run '^$' -bench 'BenchmarkService_(Cold|Cached)Synthesize$' -benchtime "${BENCHTIME:-2s}" .)
echo "$bench_out"
echo "$bench_out" | awk '
  $1 ~ /^BenchmarkService_ColdSynthesize/   { cold = $3 }
  $1 ~ /^BenchmarkService_CachedSynthesize/ { cached = $3 }
  END {
    if (cold == "" || cached == "") {
      print "ci.sh: benchmark output incomplete" > "/dev/stderr"
      exit 1
    }
    printf "{\n"
    printf "  \"coldNsPerOp\": %.0f,\n", cold
    printf "  \"cachedNsPerOp\": %.0f,\n", cached
    printf "  \"coldReqPerSec\": %.1f,\n", 1e9 / cold
    printf "  \"cachedReqPerSec\": %.1f,\n", 1e9 / cached
    printf "  \"cachedSpeedup\": %.1f\n", cold / cached
    printf "}\n"
  }' > BENCH_service.json
cat BENCH_service.json

echo "ci.sh: OK"
