#!/usr/bin/env bash
# CI gate: format + vet + build + full tests, race-checked service layer,
# the seeded chaos suites (service faults and store crash-recovery, both
# goroutine-leak gated and run twice), the cluster gate (race-checked
# suite — including the replication, partition-heal and kill-restart
# chaos tests — plus the three-topology campaign byte-diff and the
# kill-any-node zero-re-solve campaign), the admission gate (batch
# dedup/determinism, per-tenant fairness and the streaming contract,
# race-checked twice), the portfolio gate (lane racing, cross-checks,
# similarity-index adaptation and seeded-solve determinism, race-checked
# twice, plus the campaign byte-diff with racing on vs off), the FPVA
# gate (race-checked fault-coverage property suite — every single
# stuck-open/stuck-closed valve fault on 2x2..8x8 grids must be detected
# by the generated test patterns — plus the randomized FPVA campaign
# byte-diffed across solver widths and portfolio racing, and the
# cluster-served FPVA plan byte-compared to a cold single-node solve),
# and the benchmarks: cold-vs-cached request rate (BENCH_service.json),
# degraded-path throughput under injected slow-solve faults
# (BENCH_resilience.json), the plan-store tiers — cold solve vs memory
# hit vs disk hit vs warm boot (BENCH_store.json), the cluster tiers —
# local hit, peer fill, cold solve, replica push and failover read
# (BENCH_cluster.json), and the
# admission tier — batch dedup speedup, per-class queue latency,
# streamed time-to-first-plan vs time-to-proof (BENCH_admission.json),
# and the portfolio tier — cold vs warm-started vs raced synthesis on
# the saturated 16-pin ring and its one-module-delta neighbor family
# (BENCH_portfolio.json), and the plan wire format — binary vs JSON
# encode/decode cost and frame size with hard gates on decode speedup,
# size ratio and decode allocations (BENCH_planio.json), and the FPVA
# tier — grid synthesis and test-pattern generation with a scaling gate
# (BENCH_fpva.json). The wire-format
# gate also fuzzes the binary frame decoder and the cross-format
# re-encode fixed point, and byte-diffs a binary-framed replicating
# 3-node campaign against a JSON single-node reference.
#
# Usage: ./ci.sh            (full gate)
#        BENCHTIME=5s ./ci.sh  (longer benchmark runs)
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "ci.sh: gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test (tier 1) =="
go test ./...

echo "== go test -race (service layer) =="
go test -race ./internal/service/... ./cmd/synthd/... ./internal/search/ ./internal/topo/ ./client/

echo "== parallel solver gate: -race -count=2 =="
# The parallel branch-and-bound suite twice under the race detector:
# shared-incumbent publication, work stealing, topology-cache sharing.
go test -race -count=2 -run 'TestParallel|TestSharedGrid|TestClaimOrder|TestCounters' \
  ./internal/search/ ./internal/topo/

echo "== portfolio gate: -race -count=2 =="
# Lane racing, loser cross-checks, infeasibility agreement, the
# similarity index's adaptation paths and the seeded-solve determinism
# suite, twice under the race detector. -short skips only the 200-spec
# property sweep, which tier 1 above already ran once at full size.
go test -race -count=2 -short ./internal/portfolio/

echo "== determinism gate: campaign at -solver-workers 1/2/8 and -portfolio =="
# Plans must be bit-identical at every worker count AND with the solver
# portfolio racing: run the seeded campaign at three solver widths plus
# one raced run, and byte-diff the deterministic report.
det_dir=$(mktemp -d)
trap 'rm -rf "$det_dir"' EXIT
for w in 1 2 8; do
  go run ./cmd/experiments -only campaign -campaign 30 -seed 7 \
    -timelimit 10s -workers 2 -solver-workers "$w" -out "$det_dir/w$w" > /dev/null
done
go run ./cmd/experiments -only campaign -campaign 30 -seed 7 \
  -timelimit 10s -workers 2 -solver-workers 2 -portfolio -out "$det_dir/pf" > /dev/null
diff "$det_dir/w1/campaign.txt" "$det_dir/w2/campaign.txt"
diff "$det_dir/w1/campaign.txt" "$det_dir/w8/campaign.txt"
diff "$det_dir/w1/campaign.txt" "$det_dir/pf/campaign.txt"
echo "campaign.txt byte-identical at -solver-workers 1, 2, 8 and with -portfolio"

echo "== fpva gate: -race -count=2, fault coverage + determinism =="
# The FPVA suite twice under the race detector: grid construction and
# cache-key separation, synthesis determinism at 1/2/8 solver workers,
# and the test-pattern property suite — TestFaultCoverage simulates
# every single stuck-open/stuck-closed valve fault on 2x2 through 8x8
# grids and asserts 100% detection by the generated pattern set.
go test -race -count=2 ./internal/fpva/
go test -race -count=2 -run 'FPVA|SharedTopology|ValidateTopology|CanonicalKeyTopology|TestVerifyFile' \
  ./internal/topo/ ./internal/spec/ ./internal/planio/ ./cmd/verifyplan/
go test -race -run 'TestFPVAPlanClusterPortfolioMatchesSingleNode' ./internal/cluster/

echo "== fpva determinism gate: campaign at -solver-workers 1/2/8 and -portfolio =="
# Same byte-diff discipline as the crossbar campaign: the randomized
# FPVA campaign plus the grid scaling sweep (which re-verifies 100%
# fault coverage at every swept size) must be byte-identical at every
# solver width and with portfolio racing.
for w in 1 2 8; do
  go run ./cmd/experiments -only fpva -fpva-campaign 12 -seed 7 \
    -timelimit 10s -workers 2 -solver-workers "$w" -out "$det_dir/fw$w" > /dev/null
done
go run ./cmd/experiments -only fpva -fpva-campaign 12 -seed 7 \
  -timelimit 10s -workers 2 -solver-workers 2 -portfolio -out "$det_dir/fpf" > /dev/null
diff "$det_dir/fw1/fpva.txt" "$det_dir/fw2/fpva.txt"
diff "$det_dir/fw1/fpva.txt" "$det_dir/fw8/fpva.txt"
diff "$det_dir/fw1/fpva.txt" "$det_dir/fpf/fpva.txt"
echo "fpva.txt byte-identical at -solver-workers 1, 2, 8 and with -portfolio"

echo "== chaos suite: 25 seeded fault schedules, -race -count=2 =="
# The chaos tests carry their own goroutine-leak gate (leakcheck_test.go);
# -count=2 replays every seed twice to shake out order-dependent state.
# The throughput run also emits the degraded-path benchmark.
BENCH_RESILIENCE_OUT="$PWD/BENCH_resilience.json" \
  go test -race -count=2 -run 'TestChaos' ./internal/service/
cat BENCH_resilience.json

echo "== store crash-recovery gate: 25 seeded schedules, -race -count=2 =="
# Full store suite under the race detector, every crash schedule twice:
# torn tails, corrupt records, failed fsyncs, abandoned compactions.
go test -race -count=2 ./internal/store/...

echo "== cluster gate: -race -count=2, three-topology determinism =="
# The ring/membership/proxy/fill/sync suites twice under the race
# detector (-short skips only the campaign test), then the campaign
# determinism test once: it boots one node, three nodes, and three nodes
# with one killed mid-campaign, and byte-compares the deterministic
# reports across all three topologies. The -short suite now also carries
# the replication chaos gate: write-time push, failover reads,
# read-repair, corrupt-push rejection, partition+heal anti-entropy
# convergence and kill-restart rejoin, all seeded and run twice.
go test -race -count=2 -short ./internal/cluster/
go test -race -run 'TestCampaignDeterministicAcrossTopologies' ./internal/cluster/

echo "== wire-format gate: fuzz + mixed-version + binary campaign byte-diff =="
# The binary frame decoder must reject every malformed frame it is
# fuzzed with, and any frame either decoder accepts must re-encode to a
# byte-identical fixed point in both formats. The mixed-version suite
# (run again here, race-checked) proves a binary node and a JSON-only
# peer interoperate with zero verification skips, and the campaign
# byte-diff proves the wire format is invisible in results: a
# replicating binary 3-node cluster matches a JSON single node. The
# plan-stream suite proves the persistent fetch channel serves
# byte-identical frames, falls back to plain GETs for pre-stream peers,
# and hangs up when its engine retires.
go test -fuzz '^FuzzDecodeBinary$' -fuzztime 15s -run '^$' ./internal/planio/
go test -fuzz '^FuzzCrossFormat$' -fuzztime 15s -run '^$' ./internal/planio/
go test -race -run 'TestMixedVersionClusterInterop|TestDigestCache|TestPlanBytes|TestPlanEndpointNegotiatesFormat|TestPlanStream|TestStreamFetch' \
  ./internal/cluster/ ./internal/service/ ./internal/planio/
go test -race -run 'TestCampaignBinaryClusterMatchesJSONSingleNode' ./internal/cluster/

echo "== replication chaos gate: kill any node mid-campaign, zero re-solves =="
# For every choice of victim in a replicated 3-node cluster: warm a
# seeded campaign, kill the victim mid-rerun, and require the rerun to
# stay byte-identical to a single-node reference with zero additional
# solver runs — every plan the victim held must be served from a
# successor's replica.
go test -race -run 'TestChaosKillAnyNodeMidCampaignZeroResolves' ./internal/cluster/

echo "== admission gate: batch determinism + fair queuing, -race -count=2 =="
# Batch dedup and determinism: a 100-spec/7-key batch must trigger
# exactly 7 solves, and a batch answer must be byte-identical to solving
# the same specs sequentially. Fairness: DRR must bound the interactive
# tenant's queue wait under a background flood (engine level and queue
# level), and shed verdicts must carry the measured Retry-After. All of
# it twice under the race detector, plus the streaming contract (frames,
# key watching, wait=proof byte-identity with the cold path).
go test -race -count=2 -run \
  'TestBatch|TestRetryAfterQueueShedPath|TestInvalidPriorityHeaderRejected|TestEngineTwoTenantFairness|TestErrorKindStatusTable|TestDoStream|TestWatchKey|TestHTTPWaitProofStreamsAndMatchesCold|TestHTTPStreamKeyEndpoint' \
  ./internal/service/
go test -race -count=2 ./internal/admission/

echo "== admission benchmark: batch dedup, per-class latency, streaming =="
# Emits BENCH_admission.json: batch dedup speedup over sequential cold
# solves (gate: >= 5x), EWMA queue wait per priority class under a mixed
# interactive/background load, and streamed time-to-first-plan vs
# time-to-proof on the saturated 16-pin case.
BENCH_ADMISSION_OUT="$PWD/BENCH_admission.json" \
  go test -run 'TestAdmissionBenchReport' ./internal/service/
cat BENCH_admission.json

echo "== portfolio benchmark: cold vs warm-start vs raced =="
# Emits BENCH_portfolio.json: cold vs warm-started solve times across
# the saturated 16-pin ring's drop-one-flow (= one-module-delta)
# neighbor family (gate: warm-start speedup > 1x, plans byte-identical)
# and the raced base solve (gate: byte-identical, zero disagreements).
BENCH_PORTFOLIO_OUT="$PWD/BENCH_portfolio.json" \
  go test -run 'TestPortfolioBenchReport' -timeout 1200s ./internal/service/
cat BENCH_portfolio.json

echo "== service benchmark: cold vs cached =="
bench_out=$(go test -run '^$' -bench 'BenchmarkService_(Cold|Cached)Synthesize$' -benchtime "${BENCHTIME:-2s}" .)
echo "$bench_out"
echo "$bench_out" | awk '
  $1 ~ /^BenchmarkService_ColdSynthesize/   { cold = $3 }
  $1 ~ /^BenchmarkService_CachedSynthesize/ { cached = $3 }
  END {
    if (cold == "" || cached == "") {
      print "ci.sh: benchmark output incomplete" > "/dev/stderr"
      exit 1
    }
    printf "{\n"
    printf "  \"coldNsPerOp\": %.0f,\n", cold
    printf "  \"cachedNsPerOp\": %.0f,\n", cached
    printf "  \"coldReqPerSec\": %.1f,\n", 1e9 / cold
    printf "  \"cachedReqPerSec\": %.1f,\n", 1e9 / cached
    printf "  \"cachedSpeedup\": %.1f\n", cold / cached
    printf "}\n"
  }' > BENCH_service.json
cat BENCH_service.json

echo "== solver benchmark: sequential vs parallel branch and bound =="
search_out=$(go test -run '^$' -bench 'BenchmarkSearch_(Sequential16|Parallel16)$' -benchmem -benchtime "${BENCHTIME:-2s}" .)
echo "$search_out"
echo "$search_out" | awk '
  $1 ~ /^BenchmarkSearch_Sequential16/ { seq = $3; seqAllocs = $7 }
  $1 ~ /^BenchmarkSearch_Parallel16/   { par = $3; parAllocs = $7 }
  END {
    if (seq == "" || par == "") {
      print "ci.sh: search benchmark output incomplete" > "/dev/stderr"
      exit 1
    }
    printf "{\n"
    printf "  \"sequentialNsPerOp\": %.0f,\n", seq
    printf "  \"parallelNsPerOp\": %.0f,\n", par
    printf "  \"sequentialAllocsPerOp\": %.0f,\n", seqAllocs
    printf "  \"parallelAllocsPerOp\": %.0f,\n", parAllocs
    printf "  \"parallelSpeedup\": %.2f\n", seq / par
    printf "}\n"
  }' > BENCH_search.json
cat BENCH_search.json

echo "== store benchmark: cold vs memory vs disk vs warm boot =="
store_out=$(go test -run '^$' -bench 'BenchmarkStore_' -benchtime "${BENCHTIME:-2s}" .)
echo "$store_out"
echo "$store_out" | awk '
  $1 ~ /^BenchmarkStore_ColdSolve/  { cold = $3 }
  $1 ~ /^BenchmarkStore_MemoryHit/  { mem = $3 }
  $1 ~ /^BenchmarkStore_DiskHit/    { disk = $3 }
  $1 ~ /^BenchmarkStore_WarmBoot/   { boot = $3 }
  END {
    if (cold == "" || mem == "" || disk == "" || boot == "") {
      print "ci.sh: store benchmark output incomplete" > "/dev/stderr"
      exit 1
    }
    printf "{\n"
    printf "  \"coldSolveNsPerOp\": %.0f,\n", cold
    printf "  \"memoryHitNsPerOp\": %.0f,\n", mem
    printf "  \"diskHitNsPerOp\": %.0f,\n", disk
    printf "  \"warmBootNsPerOp\": %.0f,\n", boot
    printf "  \"diskHitSpeedupOverCold\": %.1f,\n", cold / disk
    printf "  \"warmBootSpeedupOverCold\": %.1f,\n", cold / boot
    printf "  \"diskHitSlowdownOverMemory\": %.1f\n", disk / mem
    printf "}\n"
  }' > BENCH_store.json
cat BENCH_store.json

echo "== cluster benchmark: local hit, peer fill, cold solve, replica push, failover read =="
cluster_out=$(go test -run '^$' -bench 'BenchmarkCluster_' -benchtime "${BENCHTIME:-2s}" .)
echo "$cluster_out"
echo "$cluster_out" | awk '
  $1 ~ /^BenchmarkCluster_LocalHit/     { local = $3 }
  $1 ~ /^BenchmarkCluster_PeerFill/     { fill = $3 }
  $1 ~ /^BenchmarkCluster_ColdSolve/    { cold = $3 }
  $1 ~ /^BenchmarkCluster_ReplicaPush/  { push = $3 }
  $1 ~ /^BenchmarkCluster_FailoverRead/ { fo = $3 }
  END {
    if (local == "" || fill == "" || cold == "" || push == "" || fo == "") {
      print "ci.sh: cluster benchmark output incomplete" > "/dev/stderr"
      exit 1
    }
    printf "{\n"
    printf "  \"localHitNsPerOp\": %.0f,\n", local
    printf "  \"peerFillNsPerOp\": %.0f,\n", fill
    printf "  \"coldSolveNsPerOp\": %.0f,\n", cold
    printf "  \"replicaPushNsPerOp\": %.0f,\n", push
    printf "  \"failoverReadNsPerOp\": %.0f,\n", fo
    printf "  \"peerFillSpeedupOverCold\": %.1f,\n", cold / fill
    printf "  \"peerFillSlowdownOverLocal\": %.1f,\n", fill / local
    printf "  \"failoverReadOverPeerFill\": %.1f,\n", fo / fill
    printf "  \"replicaPushSpeedupOverCold\": %.1f\n", cold / push
    printf "}\n"
    if (fill / local > 3.0) {
      printf "ci.sh: peer fill %.1fx slower than a local hit, > 3x gate\n", fill / local > "/dev/stderr"
      exit 1
    }
  }' > BENCH_cluster.json
cat BENCH_cluster.json

echo "== planio benchmark: binary vs JSON encode/decode, gated =="
# Emits BENCH_planio.json and enforces the wire-format performance
# gates: binary decode >= 3x faster than JSON, binary frames >= 2x
# smaller, and a decode allocation ceiling so the zero-copy framing
# cannot silently regress into per-field churn.
planio_out=$(go test -run '^$' -bench 'BenchmarkPlanio_' -benchmem -benchtime "${BENCHTIME:-2s}" .)
echo "$planio_out"
echo "$planio_out" | awk '
  /^BenchmarkPlanio_/ {
    ns = ""; bp = ""; al = ""
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")      ns = $i
      else if ($(i+1) == "bytes/plan") bp = $i
      else if ($(i+1) == "allocs/op")  al = $i
    }
    if ($1 ~ /EncodeJSON/)   { ejNs = ns; jB = bp }
    if ($1 ~ /EncodeBinary/) { ebNs = ns; bB = bp }
    if ($1 ~ /DecodeJSON/)   { djNs = ns }
    if ($1 ~ /DecodeBinary/) { dbNs = ns; dbAl = al }
  }
  END {
    if (ejNs == "" || ebNs == "" || djNs == "" || dbNs == "" || jB == "" || bB == "") {
      print "ci.sh: planio benchmark output incomplete" > "/dev/stderr"
      exit 1
    }
    decodeSpeedup = djNs / dbNs
    sizeRatio = jB / bB
    printf "{\n"
    printf "  \"encodeJSONNsPerOp\": %.0f,\n", ejNs
    printf "  \"encodeBinaryNsPerOp\": %.0f,\n", ebNs
    printf "  \"decodeJSONNsPerOp\": %.0f,\n", djNs
    printf "  \"decodeBinaryNsPerOp\": %.0f,\n", dbNs
    printf "  \"jsonBytesPerPlan\": %.0f,\n", jB
    printf "  \"binaryBytesPerPlan\": %.0f,\n", bB
    printf "  \"decodeBinaryAllocsPerOp\": %.0f,\n", dbAl
    printf "  \"binaryDecodeSpeedupOverJSON\": %.2f,\n", decodeSpeedup
    printf "  \"binarySizeRatioOverJSON\": %.2f\n", sizeRatio
    printf "}\n"
    if (decodeSpeedup < 3.0) {
      printf "ci.sh: binary decode speedup %.2fx < 3x gate\n", decodeSpeedup > "/dev/stderr"
      exit 1
    }
    if (sizeRatio < 2.0) {
      printf "ci.sh: binary frame only %.2fx smaller than JSON, < 2x gate\n", sizeRatio > "/dev/stderr"
      exit 1
    }
    if (dbAl + 0 > 128) {
      printf "ci.sh: binary decode %.0f allocs/op > 128 ceiling\n", dbAl > "/dev/stderr"
      exit 1
    }
  }' > BENCH_planio.json
cat BENCH_planio.json

echo "== fpva benchmark: grid synthesis and test-pattern generation =="
# Emits BENCH_fpva.json: cold grid synthesis at 3x3/4x4 and test-pattern
# generation at 4x4/8x8 plus fault diagnosis at 8x8. Gate: pattern
# generation must scale no worse than 60x from 4x4 to 8x8 (the
# detection-matrix work grows ~28x; a superlinear set-cover regression
# would blow past the margin).
fpva_out=$(go test -run '^$' -bench 'BenchmarkFPVA_' -benchtime "${BENCHTIME:-2s}" .)
echo "$fpva_out"
echo "$fpva_out" | awk '
  $1 ~ /^BenchmarkFPVA_Solve3x3/        { s3 = $3 }
  $1 ~ /^BenchmarkFPVA_Solve4x4/        { s4 = $3 }
  $1 ~ /^BenchmarkFPVA_TestPatterns4x4/ { p4 = $3 }
  $1 ~ /^BenchmarkFPVA_TestPatterns8x8/ { p8 = $3 }
  $1 ~ /^BenchmarkFPVA_Diagnose8x8/     { d8 = $3 }
  END {
    if (s3 == "" || s4 == "" || p4 == "" || p8 == "" || d8 == "") {
      print "ci.sh: fpva benchmark output incomplete" > "/dev/stderr"
      exit 1
    }
    scaling = p8 / p4
    printf "{\n"
    printf "  \"solve3x3NsPerOp\": %.0f,\n", s3
    printf "  \"solve4x4NsPerOp\": %.0f,\n", s4
    printf "  \"testPatterns4x4NsPerOp\": %.0f,\n", p4
    printf "  \"testPatterns8x8NsPerOp\": %.0f,\n", p8
    printf "  \"diagnose8x8NsPerOp\": %.0f,\n", d8
    printf "  \"patternGen8x8Over4x4\": %.1f\n", scaling
    printf "}\n"
    if (scaling > 60.0) {
      printf "ci.sh: 8x8 pattern generation %.1fx the 4x4 cost, > 60x gate\n", scaling > "/dev/stderr"
      exit 1
    }
  }' > BENCH_fpva.json
cat BENCH_fpva.json

echo "ci.sh: OK"
