#!/usr/bin/env bash
# CI gate: format + vet + build + full tests, race-checked service layer,
# the seeded chaos suites (service faults and store crash-recovery, both
# goroutine-leak gated and run twice), and three benchmarks: cold-vs-cached
# request rate (BENCH_service.json), degraded-path throughput under
# injected slow-solve faults (BENCH_resilience.json), and the plan-store
# tiers — cold solve vs memory hit vs disk hit vs warm boot
# (BENCH_store.json).
#
# Usage: ./ci.sh            (full gate)
#        BENCHTIME=5s ./ci.sh  (longer benchmark runs)
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "ci.sh: gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test (tier 1) =="
go test ./...

echo "== go test -race (service layer) =="
go test -race ./internal/service/... ./cmd/synthd/... ./internal/search/ ./client/

echo "== chaos suite: 25 seeded fault schedules, -race -count=2 =="
# The chaos tests carry their own goroutine-leak gate (leakcheck_test.go);
# -count=2 replays every seed twice to shake out order-dependent state.
# The throughput run also emits the degraded-path benchmark.
BENCH_RESILIENCE_OUT="$PWD/BENCH_resilience.json" \
  go test -race -count=2 -run 'TestChaos' ./internal/service/
cat BENCH_resilience.json

echo "== store crash-recovery gate: 25 seeded schedules, -race -count=2 =="
# Full store suite under the race detector, every crash schedule twice:
# torn tails, corrupt records, failed fsyncs, abandoned compactions.
go test -race -count=2 ./internal/store/...

echo "== service benchmark: cold vs cached =="
bench_out=$(go test -run '^$' -bench 'BenchmarkService_(Cold|Cached)Synthesize$' -benchtime "${BENCHTIME:-2s}" .)
echo "$bench_out"
echo "$bench_out" | awk '
  $1 ~ /^BenchmarkService_ColdSynthesize/   { cold = $3 }
  $1 ~ /^BenchmarkService_CachedSynthesize/ { cached = $3 }
  END {
    if (cold == "" || cached == "") {
      print "ci.sh: benchmark output incomplete" > "/dev/stderr"
      exit 1
    }
    printf "{\n"
    printf "  \"coldNsPerOp\": %.0f,\n", cold
    printf "  \"cachedNsPerOp\": %.0f,\n", cached
    printf "  \"coldReqPerSec\": %.1f,\n", 1e9 / cold
    printf "  \"cachedReqPerSec\": %.1f,\n", 1e9 / cached
    printf "  \"cachedSpeedup\": %.1f\n", cold / cached
    printf "}\n"
  }' > BENCH_service.json
cat BENCH_service.json

echo "== store benchmark: cold vs memory vs disk vs warm boot =="
store_out=$(go test -run '^$' -bench 'BenchmarkStore_' -benchtime "${BENCHTIME:-2s}" .)
echo "$store_out"
echo "$store_out" | awk '
  $1 ~ /^BenchmarkStore_ColdSolve/  { cold = $3 }
  $1 ~ /^BenchmarkStore_MemoryHit/  { mem = $3 }
  $1 ~ /^BenchmarkStore_DiskHit/    { disk = $3 }
  $1 ~ /^BenchmarkStore_WarmBoot/   { boot = $3 }
  END {
    if (cold == "" || mem == "" || disk == "" || boot == "") {
      print "ci.sh: store benchmark output incomplete" > "/dev/stderr"
      exit 1
    }
    printf "{\n"
    printf "  \"coldSolveNsPerOp\": %.0f,\n", cold
    printf "  \"memoryHitNsPerOp\": %.0f,\n", mem
    printf "  \"diskHitNsPerOp\": %.0f,\n", disk
    printf "  \"warmBootNsPerOp\": %.0f,\n", boot
    printf "  \"diskHitSpeedupOverCold\": %.1f,\n", cold / disk
    printf "  \"warmBootSpeedupOverCold\": %.1f,\n", cold / boot
    printf "  \"diskHitSlowdownOverMemory\": %.1f\n", disk / mem
    printf "}\n"
  }' > BENCH_store.json
cat BENCH_store.json

echo "ci.sh: OK"
