// Command switchsynth synthesizes a contamination-free application-specific
// switch from a JSON case description.
//
// Usage:
//
//	switchsynth [-svg out.svg] [-ascii] [-pressure] [-engine search|iqp]
//	            [-timelimit 30s] case.json
//
// The input file is a spec.Spec in JSON, e.g.:
//
//	{
//	  "name": "demo",
//	  "switchPins": 8,
//	  "modules": ["sample", "buffer", "mix1", "mix2"],
//	  "flows": [
//	    {"from": "sample", "to": "mix1"},
//	    {"from": "buffer", "to": "mix2"}
//	  ],
//	  "conflicts": [[0, 1]],
//	  "binding": 2
//	}
//
// binding: 0 = fixed (requires "fixedPins"), 1 = clockwise, 2 = unfixed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"switchsynth"
	"switchsynth/internal/planio"
)

func main() {
	var (
		svgOut    = flag.String("svg", "", "write the synthesized switch as SVG to this file")
		ascii     = flag.Bool("ascii", false, "print an ASCII rendering")
		pressure  = flag.Bool("pressure", true, "run pressure sharing")
		engine    = flag.String("engine", "", "optimizer engine: search (default) or iqp")
		timeLimit = flag.Duration("timelimit", 30*time.Second, "optimization time limit")
		verbose   = flag.Bool("v", false, "print routes, valve sequences and pressure groups")
		planOut   = flag.String("plan", "", "write the synthesized plan as JSON to this file (re-checkable with verifyplan)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: switchsynth [flags] case.json")
		flag.PrintDefaults()
		os.Exit(2)
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var sp switchsynth.Spec
	if err := json.Unmarshal(data, &sp); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", flag.Arg(0), err))
	}

	syn, err := switchsynth.Synthesize(&sp, switchsynth.Options{
		Engine:          *engine,
		TimeLimit:       *timeLimit,
		PressureSharing: *pressure,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Println(syn.Summary())
	if *verbose {
		fmt.Println("\nbinding:")
		for _, m := range sp.Modules {
			fmt.Printf("  %-12s -> pin %d (%s)\n", m, syn.PinOf[m],
				syn.Switch.Vertices[syn.Switch.PinVertex(syn.PinOf[m])].Name)
		}
		fmt.Println("routes:")
		for _, rt := range syn.Routes {
			f := sp.Flows[rt.Flow]
			names := make([]string, len(rt.Path.Verts))
			for i, v := range rt.Path.Verts {
				names[i] = syn.Switch.Vertices[v].Name
			}
			fmt.Printf("  flow %d %s->%s set %d: %v (%.1f mm)\n",
				rt.Flow, f.From, f.To, rt.Set+1, names, rt.Path.Length)
		}
		fmt.Println("essential valves:")
		for _, v := range syn.Valves.EssentialValves() {
			fmt.Printf("  %-12s %s\n", syn.Switch.Edges[v.Edge].Name, v.SequenceString())
		}
		if syn.Pressure != nil {
			fmt.Printf("pressure groups (%d control inlets):\n", syn.Pressure.NumGroups())
			ess := syn.Valves.EssentialValves()
			for g, members := range syn.Pressure.Groups {
				fmt.Printf("  inlet %d:", g+1)
				for _, m := range members {
					fmt.Printf(" %s", syn.Switch.Edges[ess[m].Edge].Name)
				}
				fmt.Println()
			}
		}
	}
	if *ascii {
		fmt.Println()
		fmt.Println(syn.ASCII())
	}
	if *svgOut != "" {
		if err := os.WriteFile(*svgOut, []byte(syn.SVG()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *svgOut)
	}
	if *planOut != "" {
		data, err := planio.Encode(syn.Result)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*planOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *planOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "switchsynth:", err)
	os.Exit(1)
}
