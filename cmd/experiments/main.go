// Command experiments regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	experiments [-out results] [-timelimit 30s] [-campaign 90] [-seed 42]
//	            [-only table4.1|table4.2|table4.3|campaign|fpva|spine|stress|figures]
//	            [-workers N] [-solver-workers N] [-daemon http://host:8080]
//	            [-portfolio] [-fpva-campaign 30]
//
// -workers bounds how many campaign cases solve concurrently;
// -solver-workers parallelizes the branch and bound inside each solve;
// -portfolio races the solver backends inside each campaign solve.
// Every table and the deterministic campaign report are byte-identical
// for any value of any knob.
//
// With -daemon the campaign's solves are submitted to a remote synthd
// daemon through the retrying client; every returned plan is re-verified
// locally before it counts as solved.
//
// Output goes to stdout; figures (SVG) and table text files are written to
// the -out directory. Runtimes marked with '*' hit the time limit and
// report the best plan found (the paper let Gurobi run for hours on the
// unfixed cases; see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"switchsynth"
	"switchsynth/internal/cases"
	"switchsynth/internal/exp"
	"switchsynth/internal/report"
)

func main() {
	var (
		out       = flag.String("out", "results", "output directory for figures and tables ('' to skip files)")
		timeLimit = flag.Duration("timelimit", 30*time.Second, "per-synthesis time limit")
		campaignN = flag.Int("campaign", 90, "number of artificial campaign cases")
		fpvaN     = flag.Int("fpva-campaign", 30, "number of randomized FPVA campaign cases")
		seed      = flag.Int64("seed", 42, "campaign generator seed")
		only      = flag.String("only", "", "run a single experiment: table4.1, table4.2, table4.3, campaign, fpva, spine, gru, scaling, stress, figures")
		engine    = flag.String("engine", "", "optimizer engine: search (default) or iqp")
		workers   = flag.Int("workers", 0, "concurrent campaign syntheses (0 = GOMAXPROCS, 1 = sequential)")
		solverWrk = flag.Int("solver-workers", 0, "branch-and-bound goroutines per solve (0 = sequential; results are identical at any value)")
		daemon    = flag.String("daemon", "", "synthd base URL; campaign solves go through the remote daemon")
		pfRace    = flag.Bool("portfolio", false, "race the solver backends inside each campaign solve (results are identical either way)")
	)
	flag.Parse()

	cfg := exp.Config{TimeLimit: *timeLimit, OutDir: *out, Engine: *engine, Workers: *workers, SolverWorkers: *solverWrk, DaemonURL: *daemon, Portfolio: *pfRace}
	want := func(name string) bool { return *only == "" || *only == name }
	var files []string

	save := func(name, content string) {
		if *out == "" {
			return
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		p := filepath.Join(*out, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		files = append(files, p)
	}

	var plans41 map[string]*switchsynth.Synthesis
	var syn42 *switchsynth.Synthesis

	if want("table4.1") || want("figures") {
		fmt.Println("== Table 4.1: contamination avoidance ==")
		rows, plans := exp.RunTable41(cfg)
		plans41 = plans
		text := report.Table41(rows)
		fmt.Println(text)
		save("table4.1.txt", text)
	}
	if want("table4.2") || want("figures") {
		fmt.Println("== Table 4.2: flow scheduling example ==")
		ex, syn, err := exp.RunTable42(cfg)
		if err != nil {
			fatal(err)
		}
		syn42 = syn
		fmt.Println(ex.String())
		save("table4.2.txt", ex.String())
	}
	if want("table4.3") {
		fmt.Println("== Table 4.3: binding policies ==")
		rows, _ := exp.RunTable43(cfg)
		text := report.Table43(rows)
		fmt.Println(text)
		save("table4.3.txt", text)
	}
	if want("campaign") {
		fmt.Printf("== Section 4.2: artificial campaign (%d cases, seed %d) ==\n", *campaignN, *seed)
		start := time.Now()
		res := exp.RunCampaign(cfg, *campaignN, *seed)
		wall := time.Since(start)
		fmt.Println(res.Stats.String())
		if s := res.Service; s != nil {
			fmt.Printf("engine: %d workers, wall %.2fs, %d solves (%d cache hits, %d coalesced)\n",
				s.Workers, wall.Seconds(), s.SolveCount, s.CacheHits, s.DedupCoalesced)
		}
		// The saved file is byte-identical across runs and worker counts:
		// no wall-clock values, rows in case-ID order.
		save("campaign.txt", res.Stats.DeterministicString()+"\n"+report.CampaignTable(res.Rows))
	}
	if want("fpva") {
		fmt.Printf("== FPVA: randomized grid campaign (%d cases, seed %d) + scaling sweep ==\n", *fpvaN, *seed)
		start := time.Now()
		res := exp.RunFPVACampaign(cfg, *fpvaN, *seed)
		wall := time.Since(start)
		fmt.Println(res.Stats.String())
		if s := res.Service; s != nil {
			fmt.Printf("engine: %d workers, wall %.2fs, %d solves (%d cache hits, %d coalesced)\n",
				s.Workers, wall.Seconds(), s.SolveCount, s.CacheHits, s.DedupCoalesced)
		}
		points, err := exp.RunFPVAScaling(cfg, [][2]int{{2, 2}, {2, 4}, {3, 3}, {4, 4}, {6, 6}, {8, 8}})
		if err != nil {
			fatal(err)
		}
		scalingText := exp.FPVAScalingTable(points)
		fmt.Println(scalingText)
		// Like campaign.txt, the saved file carries no wall-clock values:
		// byte-identical across runs, worker counts, and portfolio racing.
		save("fpva.txt", res.Stats.DeterministicString()+"\n"+
			report.CampaignTable(res.Rows)+"\n"+scalingText)
	}
	if want("spine") {
		fmt.Println("== Columba spine baseline pollution (Figures 4.1(d), 4.2(c)(d)) ==")
		t := report.NewTable("case", "polluted conflict pairs", "contaminated nodes", "contaminated segments")
		for _, c := range []cases.Case{cases.NucleicAcid(), cases.MRNAIsolation(), cases.ChIPSw1()} {
			cmp, err := exp.RunSpineBaseline(c)
			if err != nil {
				fatal(err)
			}
			t.AddRow(cmp.Case,
				fmt.Sprint(cmp.Report.ConflictPairsPolluted),
				fmt.Sprint(len(cmp.Report.ContaminatedVertices)),
				fmt.Sprint(len(cmp.Report.ContaminatedEdges)))
		}
		fmt.Println(t.String())
		save("spine-baseline.txt", t.String())
	}
	if want("scaling") {
		fmt.Println("== Section 4.3: runtime vs module count (12-pin, clockwise) ==")
		t := report.NewTable("#modules", "#flows", "T(s)", "solved")
		for _, p := range exp.RunScaling(cfg, []int{4, 5, 6, 7, 8, 9, 10, 11, 12}) {
			t.AddRow(fmt.Sprint(p.Modules), fmt.Sprint(p.Flows),
				fmt.Sprintf("%.3f", p.Seconds), fmt.Sprint(p.Proven))
		}
		fmt.Println(t.String())
		save("scaling.txt", t.String())
	}
	if want("gru") {
		fmt.Println("== Section 2.1: GRU predecessor vs crossbar grid ==")
		cmp, err := exp.RunGRUComparison(cfg)
		if err != nil {
			fatal(err)
		}
		t := report.NewTable("topology", "TL/T conflict routable", "DRC violations")
		t.AddRow("crossbar grid (this paper)", fmt.Sprint(cmp.GridFeasible), fmt.Sprint(cmp.GridDRC))
		t.AddRow("GRU (predecessor)", fmt.Sprint(cmp.GRUFeasible), fmt.Sprint(cmp.GRUDRC))
		fmt.Println(t.String())
		save("gru-comparison.txt", t.String())
	}
	if want("stress") {
		fmt.Println("== Section 5 stress case: 13-module mRNA on 16-pin ==")
		row := exp.RunStress(cfg)
		text := report.Table41([]report.ResultRow{row})
		fmt.Println(text)
		save("stress.txt", text)
	}
	if want("figures") && *out != "" {
		figs, err := exp.WriteFigures(cfg, plans41, syn42)
		if err != nil {
			fatal(err)
		}
		files = append(files, figs...)
	}

	if len(files) > 0 {
		fmt.Println("written:")
		for _, f := range files {
			fmt.Println("  " + f)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
