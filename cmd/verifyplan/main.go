// Command verifyplan independently re-checks a serialized switch plan:
// structural verification (binding, paths, conflicts, collisions), valve
// analysis, and the conservative fluidic simulation.
//
// Usage:
//
//	switchsynth -plan plan.json case.json   # produce a plan file
//	verifyplan plan.json                    # re-verify it
//
// Exit status 0 means the plan passed every check.
package main

import (
	"flag"
	"fmt"
	"os"

	"switchsynth/internal/clique"
	"switchsynth/internal/contam"
	"switchsynth/internal/planio"
	"switchsynth/internal/sim"
	"switchsynth/internal/valve"
)

func main() {
	quiet := flag.Bool("q", false, "only print failures")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: verifyplan [-q] plan.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	res, err := planio.Decode(data)
	if err != nil {
		fatal(err)
	}
	say := func(format string, args ...interface{}) {
		if !*quiet {
			fmt.Printf(format+"\n", args...)
		}
	}
	say("plan %q: %d-pin switch, %d flows, %d sets, L=%.1fmm",
		res.Spec.Name, res.Spec.SwitchPins, len(res.Routes), res.NumSets, res.Length)

	if err := contam.Verify(res); err != nil {
		fatal(fmt.Errorf("structural verification FAILED: %w", err))
	}
	say("structural verification: ok (contamination-free, collision-free)")

	va, err := valve.Analyze(res)
	if err != nil {
		fatal(err)
	}
	cover := clique.MinCover(valve.CompatibilityMatrix(va.EssentialValves()))
	say("valves: %d essential, %d control inlets after pressure sharing",
		va.NumValves(), cover.NumGroups())

	rep, err := sim.Run(res, sim.Options{Valves: va, Pressure: &cover})
	if err != nil {
		fatal(err)
	}
	if !rep.Clean() {
		for _, e := range rep.Events {
			fmt.Fprintln(os.Stderr, "simulation:", e)
		}
		fatal(fmt.Errorf("fluidic simulation FAILED with %d events", len(rep.Events)))
	}
	say("fluidic simulation: clean")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "verifyplan:", err)
	os.Exit(1)
}
