// Command verifyplan independently re-checks serialized switch plans:
// structural verification (binding, paths, conflicts, collisions), valve
// analysis, and the conservative fluidic simulation.
//
// Usage:
//
//	switchsynth -plan plan.json case.json   # produce a plan file
//	verifyplan plan.json                    # re-verify it
//	synthd -store-dir ./plans -export-plans ./dump
//	verifyplan ./dump                       # audit a store export
//
// Each argument is a plan file or a directory; a directory audits every
// *.json and *.plan inside it (the layout synthd -export-plans and
// store.Export write). Plans in either encoding — the JSON file format
// or the binary frame — are accepted; the format is sniffed per file.
// Exit status 0 means every plan passed every check; any failure is
// reported and verification continues with the remaining plans.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"switchsynth/internal/clique"
	"switchsynth/internal/contam"
	"switchsynth/internal/planio"
	"switchsynth/internal/sim"
	"switchsynth/internal/valve"
)

func main() {
	quiet := flag.Bool("q", false, "only print failures")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: verifyplan [-q] plan.json|plandir ...")
		os.Exit(2)
	}
	paths, err := expandArgs(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "verifyplan:", err)
		os.Exit(2)
	}
	failed := 0
	for _, p := range paths {
		if err := verifyFile(p, *quiet); err != nil {
			fmt.Fprintf(os.Stderr, "verifyplan: %s: %v\n", p, err)
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "verifyplan: %d of %d plans FAILED\n", failed, len(paths))
		os.Exit(1)
	}
	if !*quiet && len(paths) > 1 {
		fmt.Printf("all %d plans verified\n", len(paths))
	}
}

// expandArgs resolves each argument to plan files: files pass through,
// directories contribute their *.json and *.plan entries (sorted, so a
// store export audits in a stable order).
func expandArgs(args []string) ([]string, error) {
	var paths []string
	for _, a := range args {
		fi, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			paths = append(paths, a)
			continue
		}
		var matches []string
		for _, pat := range []string{"*.json", "*.plan"} {
			m, err := filepath.Glob(filepath.Join(a, pat))
			if err != nil {
				return nil, err
			}
			matches = append(matches, m...)
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("directory %s holds no *.json or *.plan plans", a)
		}
		sort.Strings(matches)
		paths = append(paths, matches...)
	}
	return paths, nil
}

// verifyFile runs the full check pipeline on one plan file.
func verifyFile(path string, quiet bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	res, err := planio.DecodeAny(data)
	if err != nil {
		return err
	}
	say := func(format string, args ...interface{}) {
		if !quiet {
			fmt.Printf(format+"\n", args...)
		}
	}
	substrate := fmt.Sprintf("%d-pin switch", res.Spec.Ports())
	if res.Spec.IsFPVA() {
		substrate = fmt.Sprintf("%dx%d FPVA grid (%d ports)",
			res.Spec.GridRows, res.Spec.GridCols, res.Spec.Ports())
	}
	say("plan %q: %s, %d flows, %d sets, L=%.1fmm",
		res.Spec.Name, substrate, len(res.Routes), res.NumSets, res.Length)

	if err := contam.Verify(res); err != nil {
		return fmt.Errorf("structural verification FAILED: %w", err)
	}
	say("structural verification: ok (contamination-free, collision-free)")

	va, err := valve.Analyze(res)
	if err != nil {
		return err
	}
	cover := clique.MinCover(valve.CompatibilityMatrix(va.EssentialValves()))
	say("valves: %d essential, %d control inlets after pressure sharing",
		va.NumValves(), cover.NumGroups())

	rep, err := sim.Run(res, sim.Options{Valves: va, Pressure: &cover})
	if err != nil {
		return err
	}
	if !rep.Clean() {
		for _, e := range rep.Events {
			fmt.Fprintln(os.Stderr, "simulation:", e)
		}
		return fmt.Errorf("fluidic simulation FAILED with %d events", len(rep.Events))
	}
	say("fluidic simulation: clean")
	return nil
}
