package main

import (
	"os"
	"path/filepath"
	"testing"

	"switchsynth/internal/planio"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

func writePlan(t *testing.T, dir, name string, data []byte) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestVerifyFileAuditsFPVAPlans: the audit pipeline accepts a valid
// FPVA plan in both encodings and rejects a tampered one.
func TestVerifyFileAuditsFPVAPlans(t *testing.T) {
	sp := &spec.Spec{
		Name:     "fpva-audit",
		Topology: spec.TopologyFPVA,
		GridRows: 3,
		GridCols: 3,
		Modules:  []string{"a", "b", "x", "y"},
		Flows:    []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts: [][2]int{
			{0, 1},
		},
		Binding: spec.Unfixed,
	}
	res, err := search.Solve(sp, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	jsonData, err := planio.Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	jsonPath := writePlan(t, dir, "fpva.json", jsonData)
	if err := verifyFile(jsonPath, true); err != nil {
		t.Errorf("valid FPVA JSON plan failed the audit: %v", err)
	}

	frame, err := planio.EncodeBinary(res)
	if err != nil {
		t.Fatal(err)
	}
	binPath := writePlan(t, dir, "fpva.plan", frame)
	if err := verifyFile(binPath, true); err != nil {
		t.Errorf("valid FPVA binary plan failed the audit: %v", err)
	}

	// Corrupting a route vertex must fail the audit: the rewritten name
	// either breaks path contiguity or the endpoint/binding cross-check.
	tamperedStr := replaceOnce(string(jsonData), `"n0_0"`, `"n2_2"`)
	if tamperedStr == string(jsonData) {
		// The plan may not route through n0_0; corrupt a port instead.
		tamperedStr = replaceOnce(tamperedStr, `"T1"`, `"T3"`)
	}
	tamperedPath := writePlan(t, dir, "tampered.json", []byte(tamperedStr))
	if err := verifyFile(tamperedPath, true); err == nil {
		t.Error("tampered FPVA plan passed the audit")
	}

	// Directory audit picks up all three files (two good, one bad).
	paths, err := expandArgs([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Errorf("directory audit found %d plans, want 3", len(paths))
	}
}

// TestVerifyFileCrossbarRegression: the crossbar audit path still works.
func TestVerifyFileCrossbarRegression(t *testing.T) {
	sp := &spec.Spec{
		Name:       "xbar-audit",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Binding:    spec.Unfixed,
	}
	res, err := search.Solve(sp, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := planio.Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	p := writePlan(t, t.TempDir(), "xbar.json", data)
	if err := verifyFile(p, true); err != nil {
		t.Errorf("valid crossbar plan failed the audit: %v", err)
	}
}

func replaceOnce(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}
