package main

import (
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	cfg, addr, drain, sf := parseFlags([]string{
		"-addr", "127.0.0.1:9000", "-workers", "3", "-queue", "7",
		"-cache", "99", "-timelimit", "5s", "-drain-timeout", "2s",
		"-breaker-threshold", "5", "-breaker-cooldown", "10s",
		"-negcache", "64",
		"-store-dir", "/tmp/plans", "-store-flush-interval", "25ms",
		"-store-max-wal-bytes", "4096", "-export-plans", "/tmp/dump",
	})
	if addr != "127.0.0.1:9000" {
		t.Errorf("addr = %q", addr)
	}
	if cfg.Workers != 3 || cfg.QueueDepth != 7 || cfg.CacheSize != 99 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.DefaultTimeLimit != 5*time.Second {
		t.Errorf("time limit = %v", cfg.DefaultTimeLimit)
	}
	if drain != 2*time.Second {
		t.Errorf("drain = %v", drain)
	}
	if cfg.BreakerThreshold != 5 || cfg.BreakerCooldown != 10*time.Second {
		t.Errorf("breaker cfg = %+v", cfg)
	}
	if cfg.NegativeCacheSize != 64 {
		t.Errorf("negcache = %d", cfg.NegativeCacheSize)
	}
	if sf.Dir != "/tmp/plans" || sf.FlushInterval != 25*time.Millisecond ||
		sf.MaxWALBytes != 4096 || sf.ExportDir != "/tmp/dump" {
		t.Errorf("store flags = %+v", sf)
	}
	// parseFlags only carries the configuration; the store is opened (and
	// wired into cfg.Store) by main, so no directory is touched here.
	if cfg.Store != nil {
		t.Error("parseFlags should not open the store")
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg, addr, drain, sf := parseFlags(nil)
	if addr != ":8471" {
		t.Errorf("addr = %q", addr)
	}
	if cfg.CacheSize != 1024 || cfg.DefaultTimeLimit != 30*time.Second {
		t.Errorf("cfg = %+v", cfg)
	}
	if drain != 30*time.Second {
		t.Errorf("drain = %v, want 30s default", drain)
	}
	// Zero values defer to the service defaults (breaker on, negcache on).
	if cfg.BreakerThreshold != 0 || cfg.NegativeCacheSize != 0 {
		t.Errorf("resilience cfg should default to zero: %+v", cfg)
	}
	// The durable tier is opt-in: no directory, store defaults deferred.
	if sf.Dir != "" || sf.ExportDir != "" || sf.FlushInterval != 0 || sf.MaxWALBytes != 0 {
		t.Errorf("store flags should default to zero: %+v", sf)
	}
}
