package main

import (
	"testing"
	"time"

	"switchsynth/internal/service"
)

func TestParseFlags(t *testing.T) {
	cfg, srvf := parseFlags([]string{
		"-addr", "127.0.0.1:9000", "-workers", "3", "-solver-workers", "4",
		"-queue", "7", "-cache", "99", "-timelimit", "5s", "-max-queue-wait", "12s",
		"-drain-timeout", "2s",
		"-breaker-threshold", "5", "-breaker-cooldown", "10s",
		"-negcache", "64",
		"-store-dir", "/tmp/plans", "-store-flush-interval", "25ms",
		"-store-max-wal-bytes", "4096", "-export-plans", "/tmp/dump",
		"-pprof-addr", "127.0.0.1:6060",
		"-node-id", "a", "-peers", "a=http://h1:1,b=http://h2:1",
		"-cluster-probe-interval", "500ms", "-cluster-sync-interval", "3s",
	})
	if srvf.Addr != "127.0.0.1:9000" {
		t.Errorf("addr = %q", srvf.Addr)
	}
	if cfg.Workers != 3 || cfg.QueueDepth != 7 || cfg.CacheSize != 99 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.SolverWorkers != 4 {
		t.Errorf("solver workers = %d", cfg.SolverWorkers)
	}
	if cfg.DefaultTimeLimit != 5*time.Second {
		t.Errorf("time limit = %v", cfg.DefaultTimeLimit)
	}
	if cfg.MaxQueueWait != 12*time.Second {
		t.Errorf("max queue wait = %v, want 12s", cfg.MaxQueueWait)
	}
	if srvf.Drain != 2*time.Second {
		t.Errorf("drain = %v", srvf.Drain)
	}
	if cfg.BreakerThreshold != 5 || cfg.BreakerCooldown != 10*time.Second {
		t.Errorf("breaker cfg = %+v", cfg)
	}
	if cfg.NegativeCacheSize != 64 {
		t.Errorf("negcache = %d", cfg.NegativeCacheSize)
	}
	sf := srvf.Store
	if sf.Dir != "/tmp/plans" || sf.FlushInterval != 25*time.Millisecond ||
		sf.MaxWALBytes != 4096 || sf.ExportDir != "/tmp/dump" {
		t.Errorf("store flags = %+v", sf)
	}
	if srvf.PprofAddr != "127.0.0.1:6060" {
		t.Errorf("pprof addr = %q", srvf.PprofAddr)
	}
	// parseFlags only carries the configuration; the store is opened (and
	// wired into cfg.Store) by main, so no directory is touched here.
	if cfg.Store != nil {
		t.Error("parseFlags should not open the store")
	}
	cf := srvf.Cluster
	if cf.NodeID != "a" || cf.Peers != "a=http://h1:1,b=http://h2:1" ||
		cf.ProbeInterval != 500*time.Millisecond || cf.SyncInterval != 3*time.Second {
		t.Errorf("cluster flags = %+v", cf)
	}
	// parseFlags only carries the configuration; the cluster (and the
	// engine's fill hook) are built by main.
	if cfg.PeerFill != nil {
		t.Error("parseFlags should not wire the peer-fill hook")
	}
}

func TestBuildCluster(t *testing.T) {
	var eng *service.Engine
	cl, err := buildCluster(clusterFlags{
		NodeID: "a",
		Peers:  "a=http://h1:1,b=http://h2:1",
	}, &eng)
	if err != nil {
		t.Fatal(err)
	}
	if cl.SelfID() != "a" || len(cl.Ring().Members()) != 2 {
		t.Errorf("cluster = self %q, %d members", cl.SelfID(), len(cl.Ring().Members()))
	}

	// A node id missing from the list, or no id at all, is a config
	// error the daemon must refuse to boot with.
	if _, err := buildCluster(clusterFlags{Peers: "a=http://h1:1"}, &eng); err == nil {
		t.Error("missing -node-id accepted")
	}
	if _, err := buildCluster(clusterFlags{NodeID: "z", Peers: "a=http://h1:1"}, &eng); err == nil {
		t.Error("-node-id absent from -peers accepted")
	}
	if _, err := buildCluster(clusterFlags{NodeID: "a", Peers: "garbage"}, &eng); err == nil {
		t.Error("malformed -peers accepted")
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg, srvf := parseFlags(nil)
	if srvf.Addr != ":8471" {
		t.Errorf("addr = %q", srvf.Addr)
	}
	if cfg.CacheSize != 1024 || cfg.DefaultTimeLimit != 30*time.Second {
		t.Errorf("cfg = %+v", cfg)
	}
	if srvf.Drain != 30*time.Second {
		t.Errorf("drain = %v, want 30s default", srvf.Drain)
	}
	// Zero values defer to the service defaults (breaker on, negcache on,
	// sequential solver, 30s wait watermark).
	if cfg.BreakerThreshold != 0 || cfg.NegativeCacheSize != 0 || cfg.SolverWorkers != 0 || cfg.MaxQueueWait != 0 {
		t.Errorf("resilience cfg should default to zero: %+v", cfg)
	}
	// Profiling is opt-in and off by default.
	if srvf.PprofAddr != "" {
		t.Errorf("pprof addr should default empty, got %q", srvf.PprofAddr)
	}
	// The durable tier is opt-in: no directory, store defaults deferred.
	sf := srvf.Store
	if sf.Dir != "" || sf.ExportDir != "" || sf.FlushInterval != 0 || sf.MaxWALBytes != 0 {
		t.Errorf("store flags should default to zero: %+v", sf)
	}
}

func TestValidatePprofAddr(t *testing.T) {
	valid := []string{"127.0.0.1:6060", "localhost:6060", "[::1]:6060", "127.0.0.2:80"}
	for _, addr := range valid {
		if err := validatePprofAddr(addr); err != nil {
			t.Errorf("validatePprofAddr(%q) = %v, want nil", addr, err)
		}
	}
	invalid := []string{
		"0.0.0.0:6060",     // all interfaces
		":6060",            // empty host binds all interfaces
		"192.168.1.5:6060", // routable
		"example.com:6060", // non-loopback name
		"[::]:6060",        // all interfaces, v6
		"127.0.0.1",        // missing port
	}
	for _, addr := range invalid {
		if err := validatePprofAddr(addr); err == nil {
			t.Errorf("validatePprofAddr(%q) accepted a non-loopback or malformed address", addr)
		}
	}
}
