package main

import (
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	cfg, addr := parseFlags([]string{
		"-addr", "127.0.0.1:9000", "-workers", "3", "-queue", "7",
		"-cache", "99", "-timelimit", "5s",
	})
	if addr != "127.0.0.1:9000" {
		t.Errorf("addr = %q", addr)
	}
	if cfg.Workers != 3 || cfg.QueueDepth != 7 || cfg.CacheSize != 99 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.DefaultTimeLimit != 5*time.Second {
		t.Errorf("time limit = %v", cfg.DefaultTimeLimit)
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg, addr := parseFlags(nil)
	if addr != ":8471" {
		t.Errorf("addr = %q", addr)
	}
	if cfg.CacheSize != 1024 || cfg.DefaultTimeLimit != 30*time.Second {
		t.Errorf("cfg = %+v", cfg)
	}
}
