// Command synthd serves switch synthesis over HTTP: a bounded worker
// pool solves specs concurrently, isomorphic specs are answered from a
// canonical-key result cache, and concurrent requests for the same spec
// coalesce onto one solve.
//
// Usage:
//
//	synthd [-addr :8471] [-workers N] [-queue N] [-cache N] [-timelimit 30s]
//	       [-drain-timeout 30s] [-breaker-threshold 3] [-breaker-cooldown 5s]
//	       [-negcache 256]
//
// On SIGINT/SIGTERM the daemon drains gracefully: the listener stops
// accepting, in-flight and queued solves get -drain-timeout to finish,
// and whatever is still running after that is cancelled (anytime solves
// return their best incumbent as a degraded plan).
//
// Endpoints:
//
//	POST /synthesize  {"spec": {...}, "options": {"pressureSharing": true, "svg": true}}
//	GET  /healthz     liveness and pool shape
//	GET  /metrics     job/cache/latency counters as JSON
//
// The spec payload is the same JSON format cmd/switchsynth reads; the
// response embeds the routed plan in the cmd/verifyplan format. See the
// README's "Serving" section for curl examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"switchsynth/internal/service"
)

func main() {
	cfg, addr, drain := parseFlags(os.Args[1:])

	engine := service.New(cfg)
	srv := &http.Server{
		Addr:              addr,
		Handler:           service.NewHandler(engine),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("synthd: listening on %s (%d workers, cache %d, default time limit %s)\n",
		addr, engine.Snapshot().Workers, cfg.CacheSize, cfg.DefaultTimeLimit)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("synthd: %s — draining\n", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "synthd:", err)
		engine.CloseNow()
		os.Exit(1)
	}

	// Stop accepting HTTP first, then drain the job queue. One timeout
	// budget covers both: whatever the HTTP shutdown leaves of the drain
	// window goes to in-flight and queued solves; after that, CloseNow
	// cancels the optimizer contexts and anytime solves hand back their
	// best incumbent.
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "synthd: http shutdown:", err)
	}
	drained := make(chan struct{})
	go func() { engine.Close(); close(drained) }()
	select {
	case <-drained:
		fmt.Println("synthd: drained cleanly")
	case <-shutCtx.Done():
		fmt.Fprintf(os.Stderr, "synthd: drain window (%s) expired — cancelling in-flight solves\n", drain)
		engine.CloseNow()
		<-drained
	}
}

// parseFlags builds the engine config from argv (split out for tests).
func parseFlags(args []string) (service.Config, string, time.Duration) {
	fs := flag.NewFlagSet("synthd", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8471", "listen address")
		workers    = fs.Int("workers", 0, "solver goroutines (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 0, "job queue depth (0 = 4x workers)")
		cacheSize  = fs.Int("cache", 1024, "result cache entries (negative disables)")
		timeLimit  = fs.Duration("timelimit", 30*time.Second, "default per-solve time limit")
		drain      = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown window before in-flight solves are cancelled")
		brkThresh  = fs.Int("breaker-threshold", 0, "consecutive timeouts before a spec's circuit breaker opens (0 = default 3, negative disables)")
		brkCool    = fs.Duration("breaker-cooldown", 0, "how long an open breaker fast-fails before probing (0 = default 5s)")
		negEntries = fs.Int("negcache", 0, "infeasibility-proof cache entries (0 = default 256, negative disables)")
	)
	_ = fs.Parse(args)
	return service.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheSize:         *cacheSize,
		DefaultTimeLimit:  *timeLimit,
		BreakerThreshold:  *brkThresh,
		BreakerCooldown:   *brkCool,
		NegativeCacheSize: *negEntries,
	}, *addr, *drain
}
