// Command synthd serves switch synthesis over HTTP: a bounded worker
// pool solves specs concurrently, isomorphic specs are answered from a
// canonical-key result cache, and concurrent requests for the same spec
// coalesce onto one solve.
//
// Usage:
//
//	synthd [-addr :8471] [-workers N] [-solver-workers N] [-queue N] [-cache N]
//	       [-timelimit 30s] [-max-queue-wait 30s] [-drain-timeout 30s]
//	       [-breaker-threshold 3] [-breaker-cooldown 5s] [-negcache 256]
//	       [-store-dir DIR] [-store-flush-interval 5ms] [-store-max-wal-bytes N]
//	       [-export-plans DIR] [-pprof-addr 127.0.0.1:6060]
//	       [-portfolio] [-portfolio-lanes search,milp,greedy] [-simindex-size 512]
//	       [-node-id ID -peers ID=URL,ID=URL,...] [-replication 2]
//	       [-cluster-probe-interval 2s] [-cluster-sync-interval 15s]
//
// -workers sizes the job pool (how many specs solve at once);
// -solver-workers sizes each solve (how many branch-and-bound goroutines
// explore one spec's search tree). Plans are bit-identical for every
// -solver-workers value, so the knob is safe to tune in production
// without invalidating caches. -pprof-addr exposes net/http/pprof on a
// second, loopback-only listener (off by default; never on the service
// address).
//
// Admission runs through a per-tenant weighted fair queue (see DESIGN.md
// §9): requests name their tenant and priority class via the
// X-Synthd-Tenant / X-Synthd-Priority headers, classes share the workers
// by deficit round-robin, and under load the lower classes are shed
// early with 429s whose Retry-After is measured from the observed
// dequeue rate. -max-queue-wait sets the global wait watermark: when the
// queue's predicted wait for a new arrival exceeds it, every class —
// interactive included — is shed rather than queued beyond use.
//
// With -store-dir the result cache gains a durable tier: solved proven
// plans are persisted to a WAL-backed, content-addressed store in DIR,
// and a restarted daemon warm-boots from it — a previously solved spec
// (or any rotated/permuted equivalent) is answered from disk with zero
// solver invocations. -export-plans dumps every persisted plan from
// -store-dir as planio JSON files into DIR (for cmd/verifyplan audit)
// and exits without serving.
//
// With -portfolio each search-engine solve races the configured backend
// lanes — parallel branch-and-bound, the exact MILP encoding, and a
// greedy first-fit incumbent — under one supervisor: the first
// optimality proof wins and cancels the rest, every lane that still
// completes is cross-checked against the winner, and any disagreement
// between two proofs fails the solve closed (it is a solver bug, never a
// plan to serve). The served plan is byte-identical to a plain search
// solve, so racing never partitions the cache. Independently, the
// similarity warm-start index (on by default; -simindex-size to resize
// or disable) seeds cold solves of specs one edit away — a module or
// flow added or removed, a conflict toggled — from an adapted
// previously-proven neighbor plan; seeds only tighten the initial bound
// and plans stay bit-identical. GET /portfolio reports both features'
// counters; see DESIGN.md §10.
//
// With -peers (and a -node-id naming this instance's entry in the
// list) the daemon joins a consistent-hash sharded cluster: each spec's
// canonical key has one owning node and -replication minus one
// successors forming its replica set. Non-owners proxy /synthesize to
// the owner, failing over to successors when the owner is down and
// falling back to a local solve when no replica answers; local cache
// misses try the replica set's plans before solving; freshly proven
// plans are pushed asynchronously to the key's replica set; and a
// background anti-entropy loop pulls plans this node replicates but
// lacks, so a killed-and-restarted node re-converges. Every plan
// crossing a node boundary is re-verified before it is served or
// stored. The peer list is static and must be identical on every node;
// see DESIGN.md §8.
//
// On SIGINT/SIGTERM the daemon drains gracefully: /readyz flips to 503
// so cluster peers stop routing here, the listener stops accepting,
// in-flight and queued solves get -drain-timeout to finish, and
// whatever is still running after that is cancelled (anytime solves
// return their best incumbent as a degraded plan). The store is closed
// — final group commit included — after the engine stops writing.
//
// Endpoints:
//
//	POST /synthesize              {"spec": {...}, "options": {"pressureSharing": true, "svg": true}};
//	                              with ?wait=proof the response is an ndjson
//	                              stream of improving anytime plans ending in
//	                              the proven one
//	POST /synthesize/batch        {"specs": [{"spec": ...}, ...], "options": ...};
//	                              members are canonicalized and deduped, one
//	                              solve per distinct key, per-item outcomes
//	GET  /synthesize/stream/{key} attach to a key's in-flight solve and follow
//	                              its incumbents (ndjson)
//	GET  /healthz                 liveness and pool shape
//	GET  /readyz                  readiness: 200 serving, 503 once draining
//	GET  /metrics                 job/cache/store/cluster/admission counters as JSON
//	GET  /portfolio               portfolio racing and warm-start counters
//	GET  /plans                   manifest of locally held plan keys
//	GET  /plans/{key}             one plan's wire bytes (404 when absent)
//	PUT  /plans/{key}             receive a peer's replication push (re-verified
//	                              before storing; 204 ok, 422 rejected)
//	GET  /cluster                 ring membership, health, and forwarding counters
//
// The spec payload is the same JSON format cmd/switchsynth reads; the
// response embeds the routed plan in the cmd/verifyplan format. See the
// README's "Serving" section for curl examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"switchsynth/internal/cluster"
	"switchsynth/internal/portfolio"
	"switchsynth/internal/service"
	"switchsynth/internal/store"
)

// storeFlags carries the durable-tier configuration out of parseFlags.
type storeFlags struct {
	// Dir enables the store when non-empty.
	Dir string
	// FlushInterval is the group-commit window (negative = fsync every
	// put); MaxWALBytes the compaction threshold (negative disables).
	FlushInterval time.Duration
	MaxWALBytes   int64
	// ExportDir, when non-empty, dumps the store and exits.
	ExportDir string
}

// clusterFlags carries the sharding configuration out of parseFlags.
type clusterFlags struct {
	// Peers is the raw -peers list ("id=url,..."); empty disables
	// clustering entirely.
	Peers string
	// NodeID names this instance's entry in Peers.
	NodeID string
	// ProbeInterval paces the peer health probes; SyncInterval the
	// anti-entropy rounds (negative disables sync).
	ProbeInterval time.Duration
	SyncInterval  time.Duration
	// Replication is the replica-set size R (0 = default 2, clamped to
	// the cluster size; 1 disables replication).
	Replication int
}

// serverFlags carries the daemon-level (non-engine) configuration out of
// parseFlags.
type serverFlags struct {
	// Addr is the service listen address.
	Addr string
	// Drain is the graceful-shutdown window.
	Drain time.Duration
	// PprofAddr, when non-empty, serves net/http/pprof on a second
	// listener. Loopback only — validatePprofAddr rejects anything else.
	PprofAddr string
	// Store is the durable-tier configuration.
	Store storeFlags
	// Cluster is the sharding configuration.
	Cluster clusterFlags
}

func main() {
	cfg, srvf := parseFlags(os.Args[1:])
	sf := srvf.Store

	if srvf.PprofAddr != "" {
		if err := validatePprofAddr(srvf.PprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, "synthd:", err)
			os.Exit(2)
		}
		go func() {
			if err := http.ListenAndServe(srvf.PprofAddr, pprofMux()); err != nil {
				fmt.Fprintln(os.Stderr, "synthd: pprof:", err)
			}
		}()
		fmt.Printf("synthd: pprof on http://%s/debug/pprof/\n", srvf.PprofAddr)
	}

	var st *store.Store
	if sf.Dir != "" {
		var err error
		st, err = store.Open(sf.Dir, store.Options{
			FlushInterval: sf.FlushInterval,
			MaxWALBytes:   sf.MaxWALBytes,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "synthd:", err)
			os.Exit(1)
		}
		stats := st.Stats()
		fmt.Printf("synthd: plan store %s: %d plans (%d bytes), %d records replayed, %d torn bytes truncated\n",
			sf.Dir, stats.Entries, stats.DiskBytes, stats.Recovered, stats.TruncatedBytes)
		cfg.Store = st
	}
	if sf.ExportDir != "" {
		if st == nil {
			fmt.Fprintln(os.Stderr, "synthd: -export-plans requires -store-dir")
			os.Exit(2)
		}
		n, err := st.Export(sf.ExportDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synthd:", err)
			os.Exit(1)
		}
		_ = st.Close()
		fmt.Printf("synthd: exported %d plans to %s (verify with: verifyplan %s)\n", n, sf.ExportDir, sf.ExportDir)
		return
	}

	// The cluster is built before the engine (the engine's fill hook is
	// the cluster's FetchPlan), but its engine-facing callbacks late-bind
	// through the engine variable, so construction order works out.
	var engine *service.Engine
	var cl *cluster.Cluster
	if srvf.Cluster.Peers != "" {
		var err error
		cl, err = buildCluster(srvf.Cluster, &engine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synthd:", err)
			closeStore(st)
			os.Exit(2)
		}
		cfg.PeerFill = cl.FetchPlan
		cfg.OnPlanStored = cl.ReplicatePlan
	}
	engine = service.New(cfg)
	var handler http.Handler = service.NewHandler(engine)
	if cl != nil {
		handler = cl.Middleware(service.NewHandlerWith(engine, service.HandlerConfig{
			ClusterStatus: func() any { return cl.Status() },
		}))
		cl.Start()
	}
	srv := &http.Server{
		Addr:              srvf.Addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("synthd: listening on %s (%d workers, cache %d, default time limit %s)\n",
		srvf.Addr, engine.Snapshot().Workers, cfg.CacheSize, cfg.DefaultTimeLimit)
	if cl != nil {
		fmt.Printf("synthd: cluster node %q (%s), %d peers, replication %d, probe %s, sync %s\n",
			srvf.Cluster.NodeID, cluster.HashScheme, len(cl.Ring().Members()),
			cl.Status().Replication, srvf.Cluster.ProbeInterval, srvf.Cluster.SyncInterval)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("synthd: %s — draining\n", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "synthd:", err)
		stopCluster(cl)
		engine.CloseNow()
		closeStore(st)
		os.Exit(1)
	}

	// Flip /readyz to 503 first so cluster peers (and load balancers)
	// stop routing new work here while the listener is still up.
	engine.StartDrain()
	stopCluster(cl)

	// Stop accepting HTTP first, then drain the job queue. One timeout
	// budget covers both: whatever the HTTP shutdown leaves of the drain
	// window goes to in-flight and queued solves; after that, CloseNow
	// cancels the optimizer contexts and anytime solves hand back their
	// best incumbent.
	shutCtx, cancel := context.WithTimeout(context.Background(), srvf.Drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "synthd: http shutdown:", err)
	}
	drained := make(chan struct{})
	go func() { engine.Close(); close(drained) }()
	select {
	case <-drained:
		fmt.Println("synthd: drained cleanly")
	case <-shutCtx.Done():
		fmt.Fprintf(os.Stderr, "synthd: drain window (%s) expired — cancelling in-flight solves\n", srvf.Drain)
		engine.CloseNow()
		<-drained
	}
	// The engine has stopped writing; the final Close flushes whatever
	// the last group commit hadn't fsynced yet.
	closeStore(st)
}

// buildCluster parses the peer list and wires the cluster's engine
// callbacks through eng, which main assigns after service.New — the
// cluster never performs engine calls before Start, so the late binding
// is safe.
func buildCluster(cf clusterFlags, eng **service.Engine) (*cluster.Cluster, error) {
	if cf.NodeID == "" {
		return nil, fmt.Errorf("-peers requires -node-id")
	}
	peers, err := cluster.ParsePeers(cf.Peers)
	if err != nil {
		return nil, err
	}
	return cluster.New(cluster.Config{
		SelfID:        cf.NodeID,
		Peers:         peers,
		ProbeInterval: cf.ProbeInterval,
		SyncInterval:  cf.SyncInterval,
		Replication:   cf.Replication,
		LocalKeys:     func() []string { return (*eng).PlanKeys() },
		LocalImport:   func(key string, data []byte) error { return (*eng).ImportPlan(key, data) },
	})
}

// stopCluster halts the probe and sync loops (nil-safe).
func stopCluster(cl *cluster.Cluster) {
	if cl != nil {
		cl.Stop()
	}
}

// closeStore closes the durable tier (nil-safe), reporting flush errors.
func closeStore(st *store.Store) {
	if st == nil {
		return
	}
	if err := st.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "synthd: store close:", err)
	}
}

// parseFlags builds the engine config from argv (split out for tests).
func parseFlags(args []string) (service.Config, serverFlags) {
	fs := flag.NewFlagSet("synthd", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8471", "listen address")
		workers    = fs.Int("workers", 0, "concurrent solve jobs (0 = GOMAXPROCS)")
		solverWrk  = fs.Int("solver-workers", 0, "branch-and-bound goroutines per solve (0 = default 1; plans are identical at any value)")
		queue      = fs.Int("queue", 0, "job queue depth (0 = 4x workers)")
		cacheSize  = fs.Int("cache", 1024, "result cache entries (negative disables the memory tier)")
		timeLimit  = fs.Duration("timelimit", 30*time.Second, "default per-solve time limit")
		maxWait    = fs.Duration("max-queue-wait", 0, "shed any request whose predicted queue wait exceeds this (0 = default 30s)")
		drain      = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown window before in-flight solves are cancelled")
		brkThresh  = fs.Int("breaker-threshold", 0, "consecutive timeouts before a spec's circuit breaker opens (0 = default 3, negative disables)")
		brkCool    = fs.Duration("breaker-cooldown", 0, "how long an open breaker fast-fails before probing (0 = default 5s)")
		negEntries = fs.Int("negcache", 0, "infeasibility-proof cache entries (0 = default 256, negative disables)")
		pfRace     = fs.Bool("portfolio", false, "race the solver backends per solve (first optimality proof wins; losers cross-checked)")
		pfLanes    = fs.String("portfolio-lanes", "", "comma-separated racing lanes: search,milp,greedy (empty = all; needs -portfolio)")
		simSize    = fs.Int("simindex-size", 0, "similarity warm-start index entries (0 = default 512, negative disables)")
		wireFmt    = fs.String("wire-format", "", "plan encoding for store/replication: binary or json (empty = binary)")
		digestSize = fs.Int("digest-cache", 0, "verified-bytes digest cache entries (0 = shared default 4096, negative disables)")
		storeDir   = fs.String("store-dir", "", "durable plan store directory (empty disables the disk tier)")
		storeFlush = fs.Duration("store-flush-interval", 0, "store group-commit window (0 = default 5ms, negative fsyncs every put)")
		storeWAL   = fs.Int64("store-max-wal-bytes", 0, "WAL size that triggers store compaction (0 = default 8MiB, negative disables)")
		exportDir  = fs.String("export-plans", "", "with -store-dir: dump persisted plans as planio JSON into this directory and exit")
		pprofAddr  = fs.String("pprof-addr", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060; empty disables)")
		peersList  = fs.String("peers", "", "static cluster peer list as id=url,... including this node (empty disables clustering)")
		nodeID     = fs.String("node-id", "", "this node's id in -peers (required with -peers)")
		probeInt   = fs.Duration("cluster-probe-interval", 0, "peer health-probe period (0 = default 2s)")
		syncInt    = fs.Duration("cluster-sync-interval", 0, "anti-entropy sync period (0 = default 15s, negative disables)")
		replicas   = fs.Int("replication", 0, "replica-set size per plan (0 = default 2, clamped to cluster size; 1 disables replication)")
	)
	_ = fs.Parse(args)
	// Fail fast on a bad lane list instead of silently racing the default
	// set (service.Config falls back to all lanes on a parse error).
	if _, err := portfolio.ParseLanes(*pfLanes); err != nil {
		fmt.Fprintln(os.Stderr, "synthd:", err)
		os.Exit(2)
	}
	if *pfLanes != "" && !*pfRace {
		fmt.Fprintln(os.Stderr, "synthd: -portfolio-lanes requires -portfolio")
		os.Exit(2)
	}
	// Fail fast on an unknown wire format rather than silently encoding
	// with the default: a typo here would only surface as surprising
	// bytes in the store or on the wire.
	switch *wireFmt {
	case "", service.WireFormatBinary, service.WireFormatJSON:
	default:
		fmt.Fprintf(os.Stderr, "synthd: -wire-format %q: must be %q or %q\n",
			*wireFmt, service.WireFormatBinary, service.WireFormatJSON)
		os.Exit(2)
	}
	return service.Config{
			Workers:           *workers,
			SolverWorkers:     *solverWrk,
			QueueDepth:        *queue,
			CacheSize:         *cacheSize,
			DefaultTimeLimit:  *timeLimit,
			MaxQueueWait:      *maxWait,
			BreakerThreshold:  *brkThresh,
			BreakerCooldown:   *brkCool,
			NegativeCacheSize: *negEntries,
			Portfolio:         *pfRace,
			PortfolioLanes:    *pfLanes,
			SimIndexSize:      *simSize,
			WireFormat:        *wireFmt,
			DigestCacheSize:   *digestSize,
		}, serverFlags{
			Addr:      *addr,
			Drain:     *drain,
			PprofAddr: *pprofAddr,
			Store: storeFlags{
				Dir:           *storeDir,
				FlushInterval: *storeFlush,
				MaxWALBytes:   *storeWAL,
				ExportDir:     *exportDir,
			},
			Cluster: clusterFlags{
				Peers:         *peersList,
				NodeID:        *nodeID,
				ProbeInterval: *probeInt,
				SyncInterval:  *syncInt,
				Replication:   *replicas,
			},
		}
}

// validatePprofAddr confines the profiling listener to loopback: pprof
// exposes heap contents and symbol tables, so it must never bind a
// routable interface.
func validatePprofAddr(addr string) error {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-pprof-addr %q: %w", addr, err)
	}
	if host == "localhost" {
		return nil
	}
	if ip := net.ParseIP(host); ip != nil && ip.IsLoopback() {
		return nil
	}
	return fmt.Errorf("-pprof-addr %q: profiling is loopback-only (use 127.0.0.1:PORT or localhost:PORT)", addr)
}

// pprofMux registers the net/http/pprof handlers on a private mux: the
// service mux must never inherit the default-mux profiling routes.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
