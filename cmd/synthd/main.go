// Command synthd serves switch synthesis over HTTP: a bounded worker
// pool solves specs concurrently, isomorphic specs are answered from a
// canonical-key result cache, and concurrent requests for the same spec
// coalesce onto one solve.
//
// Usage:
//
//	synthd [-addr :8471] [-workers N] [-queue N] [-cache N] [-timelimit 30s]
//	       [-drain-timeout 30s] [-breaker-threshold 3] [-breaker-cooldown 5s]
//	       [-negcache 256] [-store-dir DIR] [-store-flush-interval 5ms]
//	       [-store-max-wal-bytes N] [-export-plans DIR]
//
// With -store-dir the result cache gains a durable tier: solved proven
// plans are persisted to a WAL-backed, content-addressed store in DIR,
// and a restarted daemon warm-boots from it — a previously solved spec
// (or any rotated/permuted equivalent) is answered from disk with zero
// solver invocations. -export-plans dumps every persisted plan from
// -store-dir as planio JSON files into DIR (for cmd/verifyplan audit)
// and exits without serving.
//
// On SIGINT/SIGTERM the daemon drains gracefully: the listener stops
// accepting, in-flight and queued solves get -drain-timeout to finish,
// and whatever is still running after that is cancelled (anytime solves
// return their best incumbent as a degraded plan). The store is closed
// — final group commit included — after the engine stops writing.
//
// Endpoints:
//
//	POST /synthesize  {"spec": {...}, "options": {"pressureSharing": true, "svg": true}}
//	GET  /healthz     liveness and pool shape
//	GET  /metrics     job/cache/store/latency counters as JSON
//
// The spec payload is the same JSON format cmd/switchsynth reads; the
// response embeds the routed plan in the cmd/verifyplan format. See the
// README's "Serving" section for curl examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"switchsynth/internal/service"
	"switchsynth/internal/store"
)

// storeFlags carries the durable-tier configuration out of parseFlags.
type storeFlags struct {
	// Dir enables the store when non-empty.
	Dir string
	// FlushInterval is the group-commit window (negative = fsync every
	// put); MaxWALBytes the compaction threshold (negative disables).
	FlushInterval time.Duration
	MaxWALBytes   int64
	// ExportDir, when non-empty, dumps the store and exits.
	ExportDir string
}

func main() {
	cfg, addr, drain, sf := parseFlags(os.Args[1:])

	var st *store.Store
	if sf.Dir != "" {
		var err error
		st, err = store.Open(sf.Dir, store.Options{
			FlushInterval: sf.FlushInterval,
			MaxWALBytes:   sf.MaxWALBytes,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "synthd:", err)
			os.Exit(1)
		}
		stats := st.Stats()
		fmt.Printf("synthd: plan store %s: %d plans (%d bytes), %d records replayed, %d torn bytes truncated\n",
			sf.Dir, stats.Entries, stats.DiskBytes, stats.Recovered, stats.TruncatedBytes)
		cfg.Store = st
	}
	if sf.ExportDir != "" {
		if st == nil {
			fmt.Fprintln(os.Stderr, "synthd: -export-plans requires -store-dir")
			os.Exit(2)
		}
		n, err := st.Export(sf.ExportDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synthd:", err)
			os.Exit(1)
		}
		_ = st.Close()
		fmt.Printf("synthd: exported %d plans to %s (verify with: verifyplan %s)\n", n, sf.ExportDir, sf.ExportDir)
		return
	}

	engine := service.New(cfg)
	srv := &http.Server{
		Addr:              addr,
		Handler:           service.NewHandler(engine),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("synthd: listening on %s (%d workers, cache %d, default time limit %s)\n",
		addr, engine.Snapshot().Workers, cfg.CacheSize, cfg.DefaultTimeLimit)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("synthd: %s — draining\n", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "synthd:", err)
		engine.CloseNow()
		closeStore(st)
		os.Exit(1)
	}

	// Stop accepting HTTP first, then drain the job queue. One timeout
	// budget covers both: whatever the HTTP shutdown leaves of the drain
	// window goes to in-flight and queued solves; after that, CloseNow
	// cancels the optimizer contexts and anytime solves hand back their
	// best incumbent.
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "synthd: http shutdown:", err)
	}
	drained := make(chan struct{})
	go func() { engine.Close(); close(drained) }()
	select {
	case <-drained:
		fmt.Println("synthd: drained cleanly")
	case <-shutCtx.Done():
		fmt.Fprintf(os.Stderr, "synthd: drain window (%s) expired — cancelling in-flight solves\n", drain)
		engine.CloseNow()
		<-drained
	}
	// The engine has stopped writing; the final Close flushes whatever
	// the last group commit hadn't fsynced yet.
	closeStore(st)
}

// closeStore closes the durable tier (nil-safe), reporting flush errors.
func closeStore(st *store.Store) {
	if st == nil {
		return
	}
	if err := st.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "synthd: store close:", err)
	}
}

// parseFlags builds the engine config from argv (split out for tests).
func parseFlags(args []string) (service.Config, string, time.Duration, storeFlags) {
	fs := flag.NewFlagSet("synthd", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8471", "listen address")
		workers    = fs.Int("workers", 0, "solver goroutines (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 0, "job queue depth (0 = 4x workers)")
		cacheSize  = fs.Int("cache", 1024, "result cache entries (negative disables the memory tier)")
		timeLimit  = fs.Duration("timelimit", 30*time.Second, "default per-solve time limit")
		drain      = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown window before in-flight solves are cancelled")
		brkThresh  = fs.Int("breaker-threshold", 0, "consecutive timeouts before a spec's circuit breaker opens (0 = default 3, negative disables)")
		brkCool    = fs.Duration("breaker-cooldown", 0, "how long an open breaker fast-fails before probing (0 = default 5s)")
		negEntries = fs.Int("negcache", 0, "infeasibility-proof cache entries (0 = default 256, negative disables)")
		storeDir   = fs.String("store-dir", "", "durable plan store directory (empty disables the disk tier)")
		storeFlush = fs.Duration("store-flush-interval", 0, "store group-commit window (0 = default 5ms, negative fsyncs every put)")
		storeWAL   = fs.Int64("store-max-wal-bytes", 0, "WAL size that triggers store compaction (0 = default 8MiB, negative disables)")
		exportDir  = fs.String("export-plans", "", "with -store-dir: dump persisted plans as planio JSON into this directory and exit")
	)
	_ = fs.Parse(args)
	return service.Config{
			Workers:           *workers,
			QueueDepth:        *queue,
			CacheSize:         *cacheSize,
			DefaultTimeLimit:  *timeLimit,
			BreakerThreshold:  *brkThresh,
			BreakerCooldown:   *brkCool,
			NegativeCacheSize: *negEntries,
		}, *addr, *drain, storeFlags{
			Dir:           *storeDir,
			FlushInterval: *storeFlush,
			MaxWALBytes:   *storeWAL,
			ExportDir:     *exportDir,
		}
}
