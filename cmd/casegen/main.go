// Command casegen emits the Section 4.2 artificial switch cases as JSON
// files consumable by cmd/switchsynth.
//
// Usage:
//
//	casegen [-n 90] [-seed 42] [-out cases/]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"switchsynth/internal/cases"
)

func main() {
	var (
		n    = flag.Int("n", 90, "number of cases")
		seed = flag.Int64("seed", 42, "generator seed")
		out  = flag.String("out", "cases", "output directory")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, c := range cases.Artificial(*n, *seed) {
		data, err := json.MarshalIndent(c.Spec, "", "  ")
		if err != nil {
			fatal(err)
		}
		p := filepath.Join(*out, c.Spec.Name+".json")
		if err := os.WriteFile(p, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d cases to %s\n", *n, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "casegen:", err)
	os.Exit(1)
}
