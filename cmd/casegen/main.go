// Command casegen emits randomized synthesis cases as JSON files
// consumable by cmd/switchsynth: the Section 4.2 artificial crossbar
// campaign by default, or randomized FPVA grid cases with -fpva.
//
// Usage:
//
//	casegen [-n 90] [-seed 42] [-out cases/]
//	casegen -fpva [-n 30] [-seed 42] [-out fpvacases/]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"switchsynth/internal/cases"
)

func main() {
	var (
		n    = flag.Int("n", 90, "number of cases")
		seed = flag.Int64("seed", 42, "generator seed")
		out  = flag.String("out", "cases", "output directory")
		fpva = flag.Bool("fpva", false, "generate FPVA grid cases (randomized grid dimensions, flow counts and conflict density) instead of crossbar cases")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	var cs []cases.Case
	if *fpva {
		cs = cases.ArtificialFPVA(*n, *seed)
	} else {
		cs = cases.Artificial(*n, *seed)
	}
	for _, c := range cs {
		if err := c.Spec.Validate(); err != nil {
			fatal(err)
		}
		data, err := json.MarshalIndent(c.Spec, "", "  ")
		if err != nil {
			fatal(err)
		}
		p := filepath.Join(*out, c.Spec.Name+".json")
		if err := os.WriteFile(p, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d cases to %s\n", *n, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "casegen:", err)
	os.Exit(1)
}
